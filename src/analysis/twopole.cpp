#include "analysis/twopole.h"

#include <cmath>

#include "util/units.h"

namespace contango {

TwoPoleStage::TwoPoleStage(const Stage& stage, KOhm r_drv) {
  const std::size_t n = stage.nodes.size();
  m1_.assign(n, 0.0);
  m2_.assign(n, 0.0);

  // First moments: Elmore tau with the driver resistance included, via the
  // usual downstream-cap sweeps.
  std::vector<Ff> cdown(n, 0.0);
  Ff ctotal = 0.0;
  for (std::size_t i = n; i-- > 0;) {
    cdown[i] += stage.nodes[i].cap;
    ctotal += stage.nodes[i].cap;
    if (stage.nodes[i].parent >= 0) {
      cdown[static_cast<std::size_t>(stage.nodes[i].parent)] += cdown[i];
    }
  }
  m1_[0] = r_drv * ctotal;
  for (std::size_t i = 1; i < n; ++i) {
    m1_[i] = m1_[static_cast<std::size_t>(stage.nodes[i].parent)] +
             stage.nodes[i].res * cdown[i];
  }

  // Second moments: same propagation pattern with moment-weighted charge
  // w_k = C_k * m1_k in place of the plain capacitance.
  std::vector<double> wdown(n, 0.0);
  double wtotal = 0.0;
  for (std::size_t i = n; i-- > 0;) {
    const double w = stage.nodes[i].cap * m1_[i];
    wdown[i] += w;
    wtotal += w;
    if (stage.nodes[i].parent >= 0) {
      wdown[static_cast<std::size_t>(stage.nodes[i].parent)] += wdown[i];
    }
  }
  m2_[0] = r_drv * wtotal;
  for (std::size_t i = 1; i < n; ++i) {
    m2_[i] = m2_[static_cast<std::size_t>(stage.nodes[i].parent)] +
             stage.nodes[i].res * wdown[i];
  }
}

Ps TwoPoleStage::delay(int rc) const {
  const double m1 = m1_[static_cast<std::size_t>(rc)];
  const double m2 = m2_[static_cast<std::size_t>(rc)];
  if (m2 <= 0.0) return kLn2 * m1;
  return kLn2 * m1 * m1 / std::sqrt(m2);
}

Ps TwoPoleStage::slew(int rc, Ps input_slew) const {
  const double m1 = m1_[static_cast<std::size_t>(rc)];
  const double m2 = m2_[static_cast<std::size_t>(rc)];
  // Dominant pole of the two-pole fit: b1 = m1, b2 = m1^2 - m2 gives the
  // characteristic polynomial 1 + b1 s + b2 s^2; when the fit degenerates
  // use the single-pole tau.
  double tau = m1;
  const double disc = m1 * m1 - 2.0 * (m1 * m1 - m2);
  if (m1 * m1 - m2 > 0.0 && disc > 0.0) {
    const double b2 = m1 * m1 - m2;
    const double p = (m1 - std::sqrt(disc)) / (2.0 * b2);
    if (p > 0.0) tau = 1.0 / p;
  }
  const double step = kLn9 * tau;
  return std::sqrt(step * step + input_slew * input_slew);
}

}  // namespace contango

#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "analysis/evaluate.h"
#include "analysis/variation.h"

namespace contango {

/// \file montecarlo.h
/// \brief Monte-Carlo variation engine: yield-aware skew/CLR analysis.
///
/// The driver fans `trials` randomized perturbations of a clock network
/// (see analysis/variation.h) across a worker pool and aggregates
/// streaming, order-independent statistics.  Trials are numbered, each
/// trial draws from its own RNG substream and writes its own result slot,
/// and partial statistics are merged in fixed block order — so the full
/// report is **bit-identical for any thread count**.  A zero variation
/// model reproduces the nominal corners exactly in every trial.

/// \brief Order-independent streaming accumulator: count, Welford
/// mean/variance, min/max.
///
/// add() streams one sample; merge() combines two accumulators with Chan's
/// parallel-variance formula.  Bit-exact reproducibility holds as long as
/// the *partition* of samples into accumulators and the *merge order* are
/// fixed — the Monte-Carlo driver merges per-block accumulators in block
/// index order, independent of which thread filled which block.
class StreamingStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  void merge(const StreamingStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  long count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  long count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  ///< sum of squared deviations from the running mean
  double min_ = std::numeric_limits<double>::max();
  double max_ = -std::numeric_limits<double>::max();
};

/// \brief Nearest-rank percentile: sorted[ceil(p/100 * n) - 1].
///
/// Deterministic (no interpolation, total order on finite doubles); the
/// conventional definition for yield reporting.  Throws on an empty sample
/// set or p outside (0, 100].
double percentile(std::vector<double> samples, double p);

/// \brief Total-function core of percentile(): `sorted` must already be
/// sorted ascending.
///
/// Returns NaN on an empty sample set instead of reading out of bounds
/// (the nearest-rank index underflows for n == 0); out-of-domain p —
/// negative, above 100, or NaN — is clamped into [0, 100] before any
/// integer conversion, pinning the rank into [1, n].  Callers that want
/// hard validation use percentile().
double sorted_percentile(const std::vector<double>& sorted, double p);

/// Distribution summary of one metric over all trials.
struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Metrics of one Monte-Carlo trial (indexed by trial number).
struct McTrial {
  Ps skew = 0.0;         ///< nominal-corner worst skew of the perturbed network
  Ps clr = 0.0;          ///< corner-to-corner latency range
  Ps max_latency = 0.0;  ///< nominal-corner max sink latency
  Ps worst_slew = 0.0;   ///< across all corners
  /// Worst window / inter-domain bound violation (0 when the benchmark's
  /// constraint block is trivial).
  Ps constraint_violation = 0.0;
  bool legal = false;    ///< no slew violation, every sink reached
};

/// Options of the Monte-Carlo driver.
struct McOptions {
  int trials = 256;
  /// Worker threads; 0 picks hardware concurrency, 1 runs serially.
  /// Any value produces bit-identical reports.
  int threads = 1;
  /// Yield target: a trial passes when skew <= skew_target, legal, and —
  /// under a non-trivial constraint block — every sink window and
  /// inter-domain bound holds.
  Ps skew_target = 10.0;
  /// Numerical options of the per-trial evaluation.  Note:
  /// Evaluator::evaluate_mc overrides this with the evaluator's own
  /// EvalOptions so trials stay comparable to its nominal evaluate().
  EvalOptions eval;
};

/// Full Monte-Carlo report: nominal reference, per-metric distribution
/// summaries, yield, and the raw per-trial records (index = trial number).
struct McReport {
  std::string benchmark;
  int trials = 0;
  int threads = 1;  ///< worker count actually used
  VariationModel model;
  Ps skew_target = 0.0;

  EvalResult nominal;  ///< unperturbed evaluation of the same network

  MetricSummary skew;
  MetricSummary clr;
  MetricSummary max_latency;

  /// True when the benchmark carries a non-trivial constraint block; gates
  /// the constraint fields in to_json() so legacy reports stay
  /// byte-identical.
  bool constrained = false;

  double yield = 0.0;           ///< fraction of trials legal, skew <= target, constraints met
  double legal_fraction = 0.0;  ///< fraction of trials with no violation
  std::vector<McTrial> samples;
  double wall_seconds = 0.0;

  /// Stage-evaluation units — (stage x corner x transition) integrations —
  /// spent across all trials plus the nominal reference, split by engine
  /// path.  Exactly one of the two is nonzero, depending on
  /// McOptions::eval.batch.
  long batched_stage_evals = 0;
  long scalar_stage_evals = 0;

  /// Serializes the report as a JSON object (io/json); `with_samples`
  /// includes the per-trial array (one object per trial).
  std::string to_json(bool with_samples = true) const;
};

/// \brief Runs the Monte-Carlo variation analysis on a synthesized tree.
///
/// Extracts the staged netlist once, then per trial: samples the trial's
/// perturbation from its substream, applies wire/pin scaling to a scratch
/// copy of the netlist, evaluates every (corner x transition) combination
/// with per-stage supply offsets, and streams skew/CLR/latency into
/// per-block accumulators merged in deterministic order.
///
/// \param bench the benchmark the tree was synthesized for
/// \param tree synthesized clock tree (unchanged)
/// \param model variation magnitudes + substream seed
/// \param options trial count, worker threads, skew target, eval options
McReport run_montecarlo(const Benchmark& bench, const ClockTree& tree,
                        const VariationModel& model, const McOptions& options = {});

}  // namespace contango

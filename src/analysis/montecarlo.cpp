#include "analysis/montecarlo.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "io/json.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace contango {
namespace {

/// Trials per streaming block.  The block is the unit of order-independent
/// aggregation: whichever worker computes a block, its partial statistics
/// are merged in block-index order, so the merged result is a pure function
/// of (model, trial count) — never of scheduling.
constexpr int kTrialsPerBlock = 32;

/// Per-block partial aggregates, merged in block order by the driver.
struct BlockStats {
  StreamingStats skew;
  StreamingStats clr;
  StreamingStats max_latency;
  long legal = 0;
  long pass = 0;  ///< legal and skew <= target
};

/// Applies one trial's perturbation to a scratch copy of the base netlist.
///
/// Wire R/C scale globally; pin capacitances (sink pins, buffer input and
/// output pins) are exempt from wire scaling — extraction records them per
/// tap/stage — and sink pins additionally take their per-sink jitter
/// factor.  With the zero model every adjustment is exactly 0.0 and the
/// scratch netlist is bit-identical to the base.
void apply_variation(const StagedNetlist& base, const TrialVariation& v,
                     StagedNetlist& scratch) {
  scratch = base;  // copy-assign reuses the scratch buffers across trials
  const double rs = v.wire_r_scale;
  const double cs = v.wire_c_scale;
  for (Stage& stage : scratch.stages) {
    for (RcNode& node : stage.nodes) {
      node.res *= rs;
      node.cap *= cs;
    }
    stage.nodes[0].cap += stage.driver_pin_cap * (1.0 - cs);
    for (const Tap& tap : stage.taps) {
      const double pin_scale =
          tap.is_sink ? v.sink_cap_scale[static_cast<std::size_t>(tap.sink_index)]
                      : 1.0;
      stage.nodes[static_cast<std::size_t>(tap.rc_index)].cap +=
          tap.pin_cap * (pin_scale - cs);
    }
  }
}

/// SoA twin of apply_variation(): the same scale factors applied to the
/// same elements in the same order (every adjustment is element-local, so
/// the field-major layout changes no value) — a perturbed slice is
/// bit-identical to the AoS scratch netlist's stage.
void apply_variation_soa(const TrialVariation& v, NetlistSoa& soa,
                         std::size_t num_stages) {
  const double rs = v.wire_r_scale;
  const double cs = v.wire_c_scale;
  for (std::size_t si = 0; si < num_stages; ++si) {
    NetlistSoa::Span s = soa.span(static_cast<int>(si));
    for (std::size_t i = 0; i < s.num_nodes; ++i) {
      s.res[i] *= rs;
      s.cap[i] *= cs;
    }
    s.cap[0] += s.driver_pin_cap * (1.0 - cs);
    for (std::size_t k = 0; k < s.num_taps; ++k) {
      const double pin_scale =
          s.tap_sink[k] >= 0
              ? v.sink_cap_scale[static_cast<std::size_t>(s.tap_sink[k])]
              : 1.0;
      s.cap[static_cast<std::size_t>(s.tap_rc[k])] +=
          s.tap_pin_cap[k] * (pin_scale - cs);
    }
  }
}

MetricSummary summarize(const StreamingStats& stats, std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());  // one sort serves all ranks
  MetricSummary s;
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  s.min = stats.min();
  s.max = stats.max();
  s.p50 = sorted_percentile(samples, 50.0);
  s.p95 = sorted_percentile(samples, 95.0);
  s.p99 = sorted_percentile(samples, 99.0);
  return s;
}

void write_summary(JsonWriter& w, const char* name, const MetricSummary& s) {
  w.key(name);
  w.begin_object();
  w.kv("mean", s.mean);
  w.kv("stddev", s.stddev);
  w.kv("min", s.min);
  w.kv("max", s.max);
  w.kv("p50", s.p50);
  w.kv("p95", s.p95);
  w.kv("p99", s.p99);
  w.end_object();
}

}  // namespace

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double sorted_percentile(const std::vector<double>& sorted, double p) {
  // An empty sample set has no ranks: without this guard the nearest-rank
  // index `min(rank, size) - 1` underflows to SIZE_MAX (rank is 0 when
  // size is 0) and reads out of bounds.  NaN is the honest answer; the
  // table renderer prints it as "n/a" and io/json as null.
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  // Clamp p before the float->size_t conversion: casting a negative (or
  // NaN) rank would be undefined behavior, not merely out of domain.
  const double frac = std::isnan(p) ? 0.0 : std::clamp(p, 0.0, 100.0) / 100.0;
  const auto rank =
      static_cast<std::size_t>(std::ceil(frac * static_cast<double>(sorted.size())));
  return sorted[std::min(std::max<std::size_t>(rank, 1), sorted.size()) - 1];
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample set");
  if (!(p > 0.0 && p <= 100.0)) {
    throw std::invalid_argument("percentile: p must be in (0, 100]");
  }
  std::sort(samples.begin(), samples.end());
  return sorted_percentile(samples, p);
}

McReport run_montecarlo(const Benchmark& bench, const ClockTree& tree,
                        const VariationModel& model, const McOptions& options) {
  if (options.trials <= 0) {
    throw std::invalid_argument("run_montecarlo: trials must be positive");
  }
  const Timer timer;
  McReport report;
  report.benchmark = bench.name;
  report.trials = options.trials;
  report.threads = options.threads <= 0 ? hardware_threads() : options.threads;
  report.model = model;
  report.skew_target = options.skew_target;
  report.constrained = !bench.constraints.trivial();

  const StagedNetlist base = extract_stages(tree, bench, options.eval.extract);
  if (base.stages.empty()) {
    throw std::invalid_argument("run_montecarlo: empty clock tree");
  }
  const TransientSimulator sim(options.eval.transient);
  const bool batch = options.eval.batch;

  // Batched trials perturb a SoA copy of this base instead of an AoS
  // scratch netlist; `base` keeps supplying topology and driver metadata.
  NetlistSoa base_soa;
  if (batch) base_soa.build(base);

  // Nominal (unperturbed) reference, including the capacitance gate.
  if (batch) {
    report.nominal = evaluate_netlist_batch(base, base_soa, bench, sim,
                                            options.eval.source_input_slew);
  } else {
    report.nominal =
        evaluate_netlist(base, bench, sim, options.eval.source_input_slew);
  }
  std::vector<Ff> sink_caps;
  sink_caps.reserve(bench.sinks.size());
  for (const Sink& s : bench.sinks) sink_caps.push_back(s.cap);
  account_capacitance(report.nominal, tree, bench, sink_caps);

  const int trials = options.trials;
  const int num_blocks = (trials + kTrialsPerBlock - 1) / kTrialsPerBlock;
  report.samples.assign(static_cast<std::size_t>(trials), McTrial{});
  std::vector<BlockStats> blocks(static_cast<std::size_t>(num_blocks));

  // Trials plus the nominal reference, in stage-evaluation units.
  const long eval_units = static_cast<long>(trials + 1) *
                          static_cast<long>(base.stages.size()) *
                          static_cast<long>(bench.tech.corners.size()) *
                          kNumTransitions;
  report.batched_stage_evals = batch ? eval_units : 0;
  report.scalar_stage_evals = batch ? 0 : eval_units;

  // Trials are embarrassingly parallel: each writes its own slot, draws
  // from its own substream, and accumulates into its block's stats.  Blocks
  // are handed out dynamically; determinism comes from the fixed
  // trial->block partition and the in-order merge below, not from
  // scheduling.
  parallel_for(num_blocks, report.threads, [&](int b) {
    BlockStats& block = blocks[static_cast<std::size_t>(b)];
    StagedNetlist scratch;
    NetlistSoa trial_soa;
    TransientScratch sim_scratch;
    const int begin = b * kTrialsPerBlock;
    const int end = std::min(begin + kTrialsPerBlock, trials);
    for (int trial = begin; trial < end; ++trial) {
      const TrialVariation v = sample_trial(model, bench.tech, trial,
                                            base.stages.size(), bench.sinks.size());
      EvalResult eval;
      if (batch) {
        trial_soa = base_soa;  // copy-assign reuses block-local buffers
        apply_variation_soa(v, trial_soa, base.stages.size());
        eval = evaluate_netlist_batch(base, trial_soa, bench, sim,
                                      options.eval.source_input_slew,
                                      &v.stage_vdd_delta, &sim_scratch);
      } else {
        apply_variation(base, v, scratch);
        eval = evaluate_netlist(scratch, bench, sim,
                                options.eval.source_input_slew,
                                &v.stage_vdd_delta);
      }
      McTrial& t = report.samples[static_cast<std::size_t>(trial)];
      t.skew = eval.nominal_skew;
      t.clr = eval.clr;
      t.max_latency = eval.max_latency;
      t.worst_slew = eval.worst_slew;
      t.constraint_violation = eval.constraint_violation();
      t.legal = !eval.slew_violation && eval.all_sinks_reached;
      block.skew.add(t.skew);
      block.clr.add(t.clr);
      block.max_latency.add(t.max_latency);
      if (t.legal) {
        ++block.legal;
        // A trial passes only when the global target *and* every sink
        // window / inter-domain bound hold (violation is identically 0
        // for a trivial constraint block).
        if (t.skew <= options.skew_target && t.constraint_violation <= 0.0) {
          ++block.pass;
        }
      }
    }
  });

  StreamingStats skew_stats, clr_stats, latency_stats;
  long legal = 0, pass = 0;
  for (const BlockStats& block : blocks) {  // deterministic merge order
    skew_stats.merge(block.skew);
    clr_stats.merge(block.clr);
    latency_stats.merge(block.max_latency);
    legal += block.legal;
    pass += block.pass;
  }

  std::vector<double> skews, clrs, latencies;
  skews.reserve(report.samples.size());
  clrs.reserve(report.samples.size());
  latencies.reserve(report.samples.size());
  for (const McTrial& t : report.samples) {
    skews.push_back(t.skew);
    clrs.push_back(t.clr);
    latencies.push_back(t.max_latency);
  }
  report.skew = summarize(skew_stats, std::move(skews));
  report.clr = summarize(clr_stats, std::move(clrs));
  report.max_latency = summarize(latency_stats, std::move(latencies));
  report.legal_fraction = static_cast<double>(legal) / static_cast<double>(trials);
  report.yield = static_cast<double>(pass) / static_cast<double>(trials);
  report.wall_seconds = timer.seconds();
  return report;
}

McReport Evaluator::evaluate_mc(const ClockTree& tree, int trials,
                                const VariationModel& model,
                                const McOptions& options) {
  McOptions opts = options;
  opts.trials = trials;
  opts.eval = options_;
  McReport report = run_montecarlo(bench_, tree, model, opts);
  // Every trial is one full CNE pass — count it against the SPICE-run
  // budget (and the full-propagation tally) like any other evaluation.
  sim_runs_.fetch_add(trials, std::memory_order_relaxed);
  full_evals_.fetch_add(trials, std::memory_order_relaxed);
  batched_stage_evals_.fetch_add(report.batched_stage_evals,
                                 std::memory_order_relaxed);
  scalar_stage_evals_.fetch_add(report.scalar_stage_evals,
                                std::memory_order_relaxed);
  return report;
}

std::string McReport::to_json(bool with_samples) const {
  JsonWriter w;
  w.begin_object();
  w.kv("type", "contango_mc_report");
  w.kv("benchmark", benchmark);
  w.kv("trials", static_cast<long>(trials));
  w.kv("threads", static_cast<long>(threads));
  w.kv("seed", static_cast<unsigned long long>(model.seed));
  w.key("model");
  w.begin_object();
  w.kv("sigma_vdd", model.sigma_vdd);
  w.kv("sigma_wire_r", model.sigma_wire_r);
  w.kv("sigma_wire_c", model.sigma_wire_c);
  w.kv("sigma_sink_cap", model.sigma_sink_cap);
  w.end_object();
  w.kv("skew_target_ps", skew_target);
  w.key("nominal");
  w.begin_object();
  w.kv("skew_ps", nominal.nominal_skew);
  w.kv("clr_ps", nominal.clr);
  w.kv("max_latency_ps", nominal.max_latency);
  w.kv("worst_slew_ps", nominal.worst_slew);
  w.kv("total_cap_ff", nominal.total_cap);
  if (constrained) {
    w.kv("worst_window_violation_ps", nominal.worst_window_violation);
    w.kv("worst_domain_bound_violation_ps", nominal.worst_domain_bound_violation);
  }
  w.kv("legal", nominal.legal());
  w.end_object();
  write_summary(w, "skew_ps", skew);
  write_summary(w, "clr_ps", clr);
  write_summary(w, "max_latency_ps", max_latency);
  w.kv("yield", yield);
  w.kv("legal_fraction", legal_fraction);
  w.kv("wall_seconds", wall_seconds);
  w.kv("batched_stage_evals", batched_stage_evals);
  w.kv("scalar_stage_evals", scalar_stage_evals);
  if (with_samples) {
    w.key("samples");
    w.begin_array();
    for (const McTrial& t : samples) {
      w.begin_object();
      w.kv("skew_ps", t.skew);
      w.kv("clr_ps", t.clr);
      w.kv("max_latency_ps", t.max_latency);
      w.kv("worst_slew_ps", t.worst_slew);
      if (constrained) w.kv("constraint_violation_ps", t.constraint_violation);
      w.kv("legal", t.legal);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  return w.str();
}

}  // namespace contango

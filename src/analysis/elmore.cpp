#include "analysis/elmore.h"

#include <cmath>

#include "util/units.h"

namespace contango {

ElmoreStage::ElmoreStage(const Stage& stage) : stage_(stage) {
  const std::size_t n = stage.nodes.size();
  cdown_.assign(n, 0.0);
  tau_.assign(n, 0.0);

  // Downstream caps: children have larger indices, so one reverse sweep.
  for (std::size_t i = n; i-- > 0;) {
    cdown_[i] += stage.nodes[i].cap;
    if (stage.nodes[i].parent >= 0) {
      cdown_[static_cast<std::size_t>(stage.nodes[i].parent)] += cdown_[i];
    }
    total_cap_ += stage.nodes[i].cap;
  }
  // Elmore tau accumulates along root-to-node paths: one forward sweep.
  for (std::size_t i = 1; i < n; ++i) {
    const int p = stage.nodes[i].parent;
    tau_[i] = tau_[static_cast<std::size_t>(p)] + stage.nodes[i].res * cdown_[i];
  }
}

Ps ElmoreStage::delay(int rc, KOhm r_drv) const {
  return kLn2 * (r_drv * total_cap_ + tau(rc));
}

Ps ElmoreStage::slew(int rc, KOhm r_drv, Ps input_slew) const {
  const Ps step = kLn9 * (r_drv * total_cap_ + tau(rc));
  return std::sqrt(step * step + input_slew * input_slew);
}

}  // namespace contango

#pragma once

#include <vector>

#include "rctree/extract.h"

namespace contango {

/// Second-order moment analysis of a stage RC tree (Arnoldi/AWE-style
/// reduced-order model).  The paper lists Arnoldi approximation as a valid
/// drop-in for SPICE in the evaluation loop; this engine provides that
/// option at a fraction of the transient engine's cost.
///
/// For tap t with transfer-function moments m1, m2 (m1 < 0):
///   D2M delay estimate:  ln2 * m1^2 / sqrt(m2)
///   two-pole slew estimate from the fitted dominant pole.
class TwoPoleStage {
 public:
  TwoPoleStage(const Stage& stage, KOhm r_drv);

  /// First moment magnitude at RC node `rc` (the exact Elmore tau including
  /// the driver resistance term).
  Ps m1(int rc) const { return m1_[static_cast<std::size_t>(rc)]; }

  /// Second moment at RC node `rc`.
  double m2(int rc) const { return m2_[static_cast<std::size_t>(rc)]; }

  /// D2M 50% delay metric: ln2 * m1^2 / sqrt(m2).  Falls back to ln2 * m1
  /// when m2 is numerically degenerate.
  Ps delay(int rc) const;

  /// Dominant-pole 10-90% slew estimate combined with the input slew in
  /// quadrature.
  Ps slew(int rc, Ps input_slew) const;

 private:
  std::vector<Ps> m1_;
  std::vector<double> m2_;
};

}  // namespace contango

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rctree/extract.h"

namespace contango {

/// First-order (Elmore) analysis of a stage-local RC tree.
///
/// Elmore delay at tap t is  sum over path edges e of  R_e * Cdown(e),
/// plus the driver term  R_drv * Ctotal.  The 50% point of a single-pole
/// response is ln2 * tau; we report ln2-scaled delays so Elmore numbers are
/// directly comparable with the transient engine.  Slew is estimated PERI-
/// style: the stage's own 10-90% response (ln9 * tau_tap) combined with the
/// input slew in quadrature.
///
/// The paper uses closed-form models like this one only for construction
/// (DME, initial buffering); they underestimate resistive shielding and
/// slew effects, which is exactly why the flow switches to the transient
/// engine for optimization.
class ElmoreStage {
 public:
  explicit ElmoreStage(const Stage& stage);

  /// Raw Elmore time constant from the driver output to RC node `rc`,
  /// excluding the driver resistance term.
  Ps tau(int rc) const { return tau_[static_cast<std::size_t>(rc)]; }

  /// Contiguous per-node tau array (one entry per RC node).  The batched
  /// transient kernel borrows cached sweeps through this instead of
  /// re-running them per (corner x transition) combination.
  const Ps* tau_data() const { return tau_.data(); }

  /// Total grounded capacitance of the stage.
  Ff total_cap() const { return total_cap_; }

  /// Downstream capacitance seen at RC node `rc` (including its own cap).
  Ff downstream_cap(int rc) const { return cdown_[static_cast<std::size_t>(rc)]; }

  /// 50%-to-50% stage delay estimate for a driver of resistance r_drv.
  Ps delay(int rc, KOhm r_drv) const;

  /// 10-90% slew estimate at the tap given the input slew at the driver.
  Ps slew(int rc, KOhm r_drv, Ps input_slew) const;

 private:
  const Stage& stage_;
  std::vector<Ps> tau_;    ///< Elmore tau per RC node (driver term excluded)
  std::vector<Ff> cdown_;  ///< downstream cap per RC node
  Ff total_cap_ = 0.0;
};

/// \brief Per-stage cache of ElmoreStage sweeps, keyed by RcNetlist slot
/// version.
///
/// The bottom-up load (cdown) and top-down tau sweeps of an ElmoreStage
/// depend only on the stage's RC contents, so they stay valid until the
/// stage is re-extracted.  The incremental evaluator keeps one cache per
/// netlist and rebuilds entries only along dirty paths; a full evaluation
/// rebuilds them per simulate_stage() call instead.  Entries are rebuilt
/// from identical inputs by identical code, so cached and fresh sweeps are
/// bit-identical.
class ElmoreCache {
 public:
  /// Returns the cached sweep for `slot`, rebuilding it from `stage` when
  /// `version` differs from the cached one.  `stage` must be the slot's
  /// stage object (its address must stay valid while the entry is used —
  /// RcNetlist keeps slot storage stable).
  const ElmoreStage& get(int slot, std::uint64_t version, const Stage& stage) {
    if (static_cast<std::size_t>(slot) >= entries_.size()) {
      entries_.resize(static_cast<std::size_t>(slot) + 1);
    }
    Entry& e = entries_[static_cast<std::size_t>(slot)];
    if (!e.elmore || e.version != version) {
      e.elmore = std::make_unique<ElmoreStage>(stage);
      e.version = version;
    }
    return *e.elmore;
  }

  void clear() { entries_.clear(); }

 private:
  struct Entry {
    std::unique_ptr<ElmoreStage> elmore;
    std::uint64_t version = 0;
  };
  std::vector<Entry> entries_;
};

}  // namespace contango

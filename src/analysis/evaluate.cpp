#include "analysis/evaluate.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace contango {

Ps CornerTiming::max_latency() const {
  Ps best = -std::numeric_limits<double>::max();
  for (const auto& per_transition : sinks) {
    for (const SinkTiming& s : per_transition) {
      if (s.reached) best = std::max(best, s.latency);
    }
  }
  return best;
}

Ps CornerTiming::min_latency() const {
  Ps best = std::numeric_limits<double>::max();
  for (const auto& per_transition : sinks) {
    for (const SinkTiming& s : per_transition) {
      if (s.reached) best = std::min(best, s.latency);
    }
  }
  return best;
}

Ps CornerTiming::skew() const {
  Ps worst = 0.0;
  for (const auto& per_transition : sinks) {
    Ps lo = std::numeric_limits<double>::max();
    Ps hi = -std::numeric_limits<double>::max();
    bool any = false;
    for (const SinkTiming& s : per_transition) {
      if (!s.reached) continue;
      lo = std::min(lo, s.latency);
      hi = std::max(hi, s.latency);
      any = true;
    }
    if (any) worst = std::max(worst, hi - lo);
  }
  return worst;
}

KOhm effective_driver_res(KOhm nominal, const Technology& tech, Volt vdd,
                          Transition output_transition) {
  const double corner = std::pow(tech.vdd_nom / vdd, tech.supply_alpha);
  const double asym = (output_transition == Transition::kRise)
                          ? tech.rise_fall_ratio
                          : 1.0 / tech.rise_fall_ratio;
  return nominal * corner * asym;
}

Ps effective_intrinsic(Ps nominal, const Technology& tech, Volt vdd) {
  return nominal * std::pow(tech.vdd_nom / vdd, tech.supply_alpha);
}

Evaluator::Evaluator(const Benchmark& bench, EvalOptions options)
    : bench_(bench), options_(options), sim_(options.transient) {
  sink_caps_.reserve(bench.sinks.size());
  for (const Sink& s : bench.sinks) sink_caps_.push_back(s.cap);
}

EvalResult evaluate_netlist(const StagedNetlist& net, const Benchmark& bench,
                            const TransientSimulator& sim, Ps source_input_slew,
                            const std::vector<Volt>* stage_vdd_delta) {
  if (stage_vdd_delta && stage_vdd_delta->size() != net.stages.size()) {
    throw std::invalid_argument("evaluate_netlist: stage_vdd_delta size " +
                                std::to_string(stage_vdd_delta->size()) +
                                " != stage count " + std::to_string(net.stages.size()));
  }
  EvalResult result;

  /// Event at a stage driver's input.
  struct Event {
    Ps time = 0.0;
    Ps slew = 0.0;
    Transition dir = Transition::kRise;  ///< direction at the driver input
  };

  for (Volt vdd : bench.tech.corners) {
    CornerTiming corner;
    corner.vdd = vdd;
    for (auto& per_transition : corner.sinks) {
      per_transition.assign(bench.sinks.size(), SinkTiming{});
    }

    for (int t = 0; t < kNumTransitions; ++t) {
      const auto source_dir = static_cast<Transition>(t);
      std::vector<Event> events(net.stages.size());
      std::vector<char> scheduled(net.stages.size(), 0);
      events[0] = Event{0.0, source_input_slew, source_dir};
      scheduled[0] = 1;

      // Stages are created parent-before-child by extraction, so a single
      // forward sweep is a valid topological propagation.
      for (std::size_t si = 0; si < net.stages.size(); ++si) {
        if (!scheduled[si]) {
          throw std::logic_error("evaluate_netlist: stage scheduled out of order");
        }
        const Stage& stage = net.stages[si];
        const Event& ev = events[si];

        // The clock source is non-inverting; composite buffers invert.
        Transition out_dir = ev.dir;
        if (stage.driver_inverts) {
          out_dir = (ev.dir == Transition::kRise) ? Transition::kFall : Transition::kRise;
        }
        const Volt vdd_stage = stage_vdd_delta ? vdd + (*stage_vdd_delta)[si] : vdd;
        const KOhm r_drv =
            effective_driver_res(stage.driver_res_nom, bench.tech, vdd_stage, out_dir);
        const Ps intrinsic =
            effective_intrinsic(stage.driver_intrinsic_nom, bench.tech, vdd_stage);

        const std::vector<TapTiming> taps = sim.simulate_stage(stage, r_drv, intrinsic, ev.slew);

        std::size_t next_stage = 0;
        for (std::size_t k = 0; k < stage.taps.size(); ++k) {
          const Tap& tap = stage.taps[k];
          corner.max_slew = std::max(corner.max_slew, taps[k].slew);
          if (tap.is_sink) {
            SinkTiming& st = corner.sinks[t][static_cast<std::size_t>(tap.sink_index)];
            st.latency = ev.time + taps[k].delay;
            st.slew = taps[k].slew;
            st.reached = true;
          } else {
            const int child = stage.downstream_stages.at(next_stage++);
            events[static_cast<std::size_t>(child)] =
                Event{ev.time + taps[k].delay, taps[k].slew, out_dir};
            scheduled[static_cast<std::size_t>(child)] = 1;
          }
        }
      }
    }
    result.corners.push_back(std::move(corner));
  }

  for (const CornerTiming& corner : result.corners) {
    result.worst_slew = std::max(result.worst_slew, corner.max_slew);
    for (const auto& per_transition : corner.sinks) {
      for (const SinkTiming& s : per_transition) {
        if (!s.reached) result.all_sinks_reached = false;
      }
    }
  }
  result.slew_violation = result.worst_slew > bench.tech.slew_limit;
  if (!result.corners.empty()) {
    result.nominal_skew = result.corners.front().skew();
    result.max_latency = result.corners.front().max_latency();
  }
  if (result.corners.size() >= 2) {
    // Clock Latency Range (ISPD'09): greatest sink latency at the low
    // supply minus least sink latency at the nominal supply.
    result.clr = result.corners.back().max_latency() - result.corners.front().min_latency();
  } else {
    result.clr = result.nominal_skew;
  }
  return result;
}

void account_capacitance(EvalResult& result, const ClockTree& tree,
                         const Benchmark& bench, const std::vector<Ff>& sink_caps) {
  result.total_cap = tree.total_cap(bench.tech, sink_caps);
  result.cap_violation = bench.tech.cap_limit > 0.0 && result.total_cap > bench.tech.cap_limit;
}

EvalResult Evaluator::evaluate(const ClockTree& tree) {
  sim_runs_.fetch_add(1, std::memory_order_relaxed);
  const StagedNetlist net = extract_stages(tree, bench_, options_.extract);
  EvalResult result =
      evaluate_netlist(net, bench_, sim_, options_.source_input_slew);
  account_capacitance(result, tree, bench_, sink_caps_);
  return result;
}

}  // namespace contango

#include "analysis/evaluate.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace contango {

Ps CornerTiming::max_latency() const {
  Ps best = -std::numeric_limits<double>::max();
  for (const auto& per_transition : sinks) {
    for (const SinkTiming& s : per_transition) {
      if (s.reached) best = std::max(best, s.latency);
    }
  }
  return best;
}

Ps CornerTiming::min_latency() const {
  Ps best = std::numeric_limits<double>::max();
  for (const auto& per_transition : sinks) {
    for (const SinkTiming& s : per_transition) {
      if (s.reached) best = std::min(best, s.latency);
    }
  }
  return best;
}

Ps CornerTiming::skew() const {
  Ps worst = 0.0;
  for (const auto& per_transition : sinks) {
    Ps lo = std::numeric_limits<double>::max();
    Ps hi = -std::numeric_limits<double>::max();
    bool any = false;
    for (const SinkTiming& s : per_transition) {
      if (!s.reached) continue;
      lo = std::min(lo, s.latency);
      hi = std::max(hi, s.latency);
      any = true;
    }
    if (any) worst = std::max(worst, hi - lo);
  }
  return worst;
}

namespace {

/// \name Shared propagation core
/// The full (evaluate_netlist) and incremental (IncrementalEvaluator)
/// engines run exactly these helpers for everything that touches timing
/// arithmetic — event recurrence, driver view, tap fan-out, aggregation —
/// so their bit-identity contract holds by construction; the engines
/// differ only in where the TapTimings come from (fresh simulation vs.
/// cache) and how downstream stages are indexed.
/// @{

/// Event at a stage driver's input.
struct StageEvent {
  Ps time = 0.0;
  Ps slew = 0.0;
  Transition dir = Transition::kRise;  ///< direction at the driver input
};

/// The clock source is non-inverting; composite buffers invert.
Transition stage_output_dir(const Stage& stage, Transition in_dir) {
  if (!stage.driver_inverts) return in_dir;
  return (in_dir == Transition::kRise) ? Transition::kFall : Transition::kRise;
}

/// Effective driver view of `stage` under supply `vdd` driving `out_dir`.
struct DriverView {
  KOhm r_drv = 0.0;
  Ps intrinsic = 0.0;
};

DriverView stage_driver_view(const Stage& stage, const Technology& tech,
                             Volt vdd, Transition out_dir) {
  return DriverView{
      effective_driver_res(stage.driver_res_nom, tech, vdd, out_dir),
      effective_intrinsic(stage.driver_intrinsic_nom, tech, vdd)};
}

/// Fans one stage's tap timings out: sink taps land in `corner` (source
/// transition `t`), buffer taps pair with the stage's downstream entries
/// in order and hand the child its input event through
/// `schedule(child, event)`.  `taps` points at stage.taps.size() entries —
/// a row of a batched result or a scalar vector's data().
template <typename ScheduleFn>
void fan_out_taps(const Stage& stage, const StageEvent& ev, Transition out_dir,
                  const TapTiming* taps, CornerTiming& corner,
                  int t, ScheduleFn&& schedule) {
  std::size_t next_stage = 0;
  for (std::size_t k = 0; k < stage.taps.size(); ++k) {
    const Tap& tap = stage.taps[k];
    corner.max_slew = std::max(corner.max_slew, taps[k].slew);
    if (tap.is_sink) {
      SinkTiming& st = corner.sinks[t][static_cast<std::size_t>(tap.sink_index)];
      st.latency = ev.time + taps[k].delay;
      st.slew = taps[k].slew;
      st.reached = true;
    } else {
      const int child = stage.downstream_stages.at(next_stage++);
      schedule(child, StageEvent{ev.time + taps[k].delay, taps[k].slew, out_dir});
    }
  }
}

/// Constraint half of the aggregation: per-domain skews, window and
/// inter-domain bound violations.  A trivial block returns immediately, so
/// legacy benchmarks pay nothing and their results stay bit-identical.
/// Violations are evaluated at every (corner, transition) — a constraint
/// holds only if it holds everywhere — while the reported per-domain skews
/// use the nominal corner, mirroring `nominal_skew`.
void aggregate_constraints(EvalResult& result, const Benchmark& bench) {
  const TimingConstraints& cons = bench.constraints;
  if (cons.trivial()) return;

  const std::size_t num_domains = cons.num_domains();
  constexpr Ps kInf = std::numeric_limits<Ps>::infinity();
  result.domain_skews.assign(num_domains, 0.0);
  std::vector<Ps> lo(num_domains), hi(num_domains);

  for (std::size_t c = 0; c < result.corners.size(); ++c) {
    const CornerTiming& corner = result.corners[c];
    for (int t = 0; t < kNumTransitions; ++t) {
      const std::vector<SinkTiming>& sinks =
          corner.sinks[static_cast<std::size_t>(t)];
      std::fill(lo.begin(), lo.end(), kInf);
      std::fill(hi.begin(), hi.end(), -kInf);
      Ps global_lo = kInf;
      for (std::size_t s = 0; s < sinks.size(); ++s) {
        if (!sinks[s].reached) continue;
        const std::uint32_t d = cons.domain_of(s);
        lo[d] = std::min(lo[d], sinks[s].latency);
        hi[d] = std::max(hi[d], sinks[s].latency);
        global_lo = std::min(global_lo, sinks[s].latency);
      }
      if (global_lo == kInf) continue;  // nothing reached in this combo

      if (c == 0) {
        for (std::size_t d = 0; d < num_domains; ++d) {
          if (hi[d] >= lo[d]) {
            result.domain_skews[d] =
                std::max(result.domain_skews[d], hi[d] - lo[d]);
          }
        }
      }

      if (!cons.sink_windows.empty()) {
        for (std::size_t s = 0; s < sinks.size(); ++s) {
          if (!sinks[s].reached) continue;
          const ArrivalWindow w = cons.window_of(s);
          if (w.unbounded()) continue;
          // Windows constrain the arrival relative to the earliest reached
          // sink: shift-invariant, since synthesis moves insertion delay
          // wholesale.
          const Ps r = sinks[s].latency - global_lo;
          const Ps v = std::max(w.lo - r, r - w.hi);
          if (v > result.worst_window_violation) {
            result.worst_window_violation = v;
          }
        }
      }

      for (const DomainBound& b : cons.domain_bounds) {
        if (hi[b.a] < lo[b.a] || hi[b.b] < lo[b.b]) continue;  // empty domain
        const Ps spread = std::max(hi[b.a] - lo[b.b], hi[b.b] - lo[b.a]);
        const Ps v = spread - b.bound;
        if (v > result.worst_domain_bound_violation) {
          result.worst_domain_bound_violation = v;
        }
      }
    }
  }
}

/// Shared aggregation tail of a CNE pass: derived metrics (worst slew,
/// reachability, skew, CLR, constraint violations) from the per-corner
/// timings.
void aggregate_corners(EvalResult& result, const Benchmark& bench) {
  for (const CornerTiming& corner : result.corners) {
    result.worst_slew = std::max(result.worst_slew, corner.max_slew);
    for (const auto& per_transition : corner.sinks) {
      for (const SinkTiming& s : per_transition) {
        if (!s.reached) result.all_sinks_reached = false;
      }
    }
  }
  result.slew_violation = result.worst_slew > bench.tech.slew_limit;
  if (!result.corners.empty()) {
    result.nominal_skew = result.corners.front().skew();
    result.max_latency = result.corners.front().max_latency();
  }
  if (result.corners.size() >= 2) {
    // Clock Latency Range (ISPD'09): greatest sink latency at the low
    // supply minus least sink latency at the nominal supply.
    result.clr = result.corners.back().max_latency() - result.corners.front().min_latency();
  } else {
    result.clr = result.nominal_skew;
  }
  aggregate_constraints(result, bench);
}

/// @}

}  // namespace

KOhm effective_driver_res(KOhm nominal, const Technology& tech, Volt vdd,
                          Transition output_transition) {
  const double corner = std::pow(tech.vdd_nom / vdd, tech.supply_alpha);
  const double asym = (output_transition == Transition::kRise)
                          ? tech.rise_fall_ratio
                          : 1.0 / tech.rise_fall_ratio;
  return nominal * corner * asym;
}

Ps effective_intrinsic(Ps nominal, const Technology& tech, Volt vdd) {
  return nominal * std::pow(tech.vdd_nom / vdd, tech.supply_alpha);
}

Evaluator::Evaluator(const Benchmark& bench, EvalOptions options)
    : bench_(bench), options_(options), sim_(options.transient) {
  sink_caps_.reserve(bench.sinks.size());
  for (const Sink& s : bench.sinks) sink_caps_.push_back(s.cap);
}

EvalResult evaluate_netlist(const StagedNetlist& net, const Benchmark& bench,
                            const TransientSimulator& sim, Ps source_input_slew,
                            const std::vector<Volt>* stage_vdd_delta) {
  if (stage_vdd_delta && stage_vdd_delta->size() != net.stages.size()) {
    throw std::invalid_argument("evaluate_netlist: stage_vdd_delta size " +
                                std::to_string(stage_vdd_delta->size()) +
                                " != stage count " + std::to_string(net.stages.size()));
  }
  EvalResult result;

  for (Volt vdd : bench.tech.corners) {
    CornerTiming corner;
    corner.vdd = vdd;
    for (auto& per_transition : corner.sinks) {
      per_transition.assign(bench.sinks.size(), SinkTiming{});
    }

    for (int t = 0; t < kNumTransitions; ++t) {
      const auto source_dir = static_cast<Transition>(t);
      std::vector<StageEvent> events(net.stages.size());
      std::vector<char> scheduled(net.stages.size(), 0);
      events[0] = StageEvent{0.0, source_input_slew, source_dir};
      scheduled[0] = 1;

      // Stages are created parent-before-child by extraction, so a single
      // forward sweep is a valid topological propagation.
      for (std::size_t si = 0; si < net.stages.size(); ++si) {
        if (!scheduled[si]) {
          throw std::logic_error("evaluate_netlist: stage scheduled out of order");
        }
        const Stage& stage = net.stages[si];
        const StageEvent& ev = events[si];

        const Transition out_dir = stage_output_dir(stage, ev.dir);
        const Volt vdd_stage = stage_vdd_delta ? vdd + (*stage_vdd_delta)[si] : vdd;
        const DriverView drv =
            stage_driver_view(stage, bench.tech, vdd_stage, out_dir);

        const std::vector<TapTiming> taps =
            sim.simulate_stage(stage, drv.r_drv, drv.intrinsic, ev.slew);

        fan_out_taps(stage, ev, out_dir, taps.data(), corner, t,
                     [&](int child, const StageEvent& e) {
                       events[static_cast<std::size_t>(child)] = e;
                       scheduled[static_cast<std::size_t>(child)] = 1;
                     });
      }
    }
    result.corners.push_back(std::move(corner));
  }

  aggregate_corners(result, bench);
  return result;
}

EvalResult evaluate_netlist_batch(const StagedNetlist& net, const NetlistSoa& soa,
                                  const Benchmark& bench,
                                  const TransientSimulator& sim,
                                  Ps source_input_slew,
                                  const std::vector<Volt>* stage_vdd_delta,
                                  TransientScratch* scratch) {
  if (stage_vdd_delta && stage_vdd_delta->size() != net.stages.size()) {
    throw std::invalid_argument("evaluate_netlist_batch: stage_vdd_delta size " +
                                std::to_string(stage_vdd_delta->size()) +
                                " != stage count " + std::to_string(net.stages.size()));
  }
  TransientScratch local_scratch;
  if (!scratch) scratch = &local_scratch;

  const std::size_t ns = net.stages.size();
  const std::size_t nc = bench.tech.corners.size();
  const std::size_t combos = nc * kNumTransitions;

  EvalResult result;
  result.corners.resize(nc);
  for (std::size_t ci = 0; ci < nc; ++ci) {
    result.corners[ci].vdd = bench.tech.corners[ci];
    for (auto& per_transition : result.corners[ci].sinks) {
      per_transition.assign(bench.sinks.size(), SinkTiming{});
    }
  }

  // One propagation front per (corner x transition) combination, advanced
  // stage-by-stage: combo c = ci * kNumTransitions + t owns the slice
  // [c * ns, (c + 1) * ns) of `events`/`scheduled`.  Stages are created
  // parent-before-child by extraction, so the forward sweep is a valid
  // topological propagation for every combo at once, and each combo's
  // event recurrence is exactly the scalar one.
  std::vector<StageEvent> events(combos * ns);
  std::vector<char> scheduled(combos * ns, 0);
  for (std::size_t c = 0; c < combos && ns > 0; ++c) {
    events[c * ns] = StageEvent{0.0, source_input_slew,
                                static_cast<Transition>(c % kNumTransitions)};
    scheduled[c * ns] = 1;
  }

  std::vector<BatchDrive> drives(combos);
  std::vector<Transition> out_dirs(combos);
  std::vector<TapTiming> taps;

  for (std::size_t si = 0; si < ns; ++si) {
    const Stage& stage = net.stages[si];

    // Gather every combo's driver view, then sweep them through the batch
    // kernel in combo order — the same per-combo arithmetic the scalar
    // path runs, sharing the stage's conductances and Elmore sweep.
    for (std::size_t ci = 0; ci < nc; ++ci) {
      const Volt vdd = bench.tech.corners[ci];
      for (int t = 0; t < kNumTransitions; ++t) {
        const std::size_t c = ci * kNumTransitions + static_cast<std::size_t>(t);
        if (!scheduled[c * ns + si]) {
          throw std::logic_error(
              "evaluate_netlist_batch: stage scheduled out of order");
        }
        const StageEvent& ev = events[c * ns + si];
        const Transition out_dir = stage_output_dir(stage, ev.dir);
        const Volt vdd_stage = stage_vdd_delta ? vdd + (*stage_vdd_delta)[si] : vdd;
        const DriverView drv =
            stage_driver_view(stage, bench.tech, vdd_stage, out_dir);
        drives[c] = BatchDrive{drv.r_drv, drv.intrinsic, ev.slew};
        out_dirs[c] = out_dir;
      }
    }

    const std::size_t nt = stage.taps.size();
    taps.resize(combos * nt);
    sim.simulate_stage_batch(soa.view(static_cast<int>(si)), drives.data(),
                             combos, taps.data(), *scratch);

    for (std::size_t ci = 0; ci < nc; ++ci) {
      for (int t = 0; t < kNumTransitions; ++t) {
        const std::size_t c = ci * kNumTransitions + static_cast<std::size_t>(t);
        fan_out_taps(stage, events[c * ns + si], out_dirs[c],
                     taps.data() + c * nt, result.corners[ci], t,
                     [&](int child, const StageEvent& e) {
                       events[c * ns + static_cast<std::size_t>(child)] = e;
                       scheduled[c * ns + static_cast<std::size_t>(child)] = 1;
                     });
      }
    }
  }

  aggregate_corners(result, bench);
  return result;
}

void account_capacitance(EvalResult& result, const ClockTree& tree,
                         const Benchmark& bench, const std::vector<Ff>& sink_caps) {
  result.total_cap = tree.total_cap(bench.tech, sink_caps);
  result.cap_violation = bench.tech.cap_limit > 0.0 && result.total_cap > bench.tech.cap_limit;
}

EvalResult Evaluator::evaluate(const ClockTree& tree) {
  sim_runs_.fetch_add(1, std::memory_order_relaxed);
  full_evals_.fetch_add(1, std::memory_order_relaxed);
  const StagedNetlist net = extract_stages(tree, bench_, options_.extract);
  const long units = static_cast<long>(net.stages.size()) *
                     static_cast<long>(bench_.tech.corners.size()) *
                     kNumTransitions;
  EvalResult result;
  if (options_.batch) {
    soa_.build(net);
    result = evaluate_netlist_batch(net, soa_, bench_, sim_,
                                    options_.source_input_slew, nullptr,
                                    &scratch_);
    batched_stage_evals_.fetch_add(units, std::memory_order_relaxed);
  } else {
    result = evaluate_netlist(net, bench_, sim_, options_.source_input_slew);
    scalar_stage_evals_.fetch_add(units, std::memory_order_relaxed);
  }
  account_capacitance(result, tree, bench_, sink_caps_);
  return result;
}

// ---------------------------------------------------- IncrementalEvaluator --

void IncrementalEvaluator::bind(const ClockTree& tree) {
  tree_ = &tree;
  net_.build(tree, eval_.bench_, eval_.options_.extract);
  // Slot versions are globally monotonic, so stale cache entries could
  // never be mistaken for fresh ones — clearing just releases memory.
  elmore_.clear();
  timings_.clear();
}

EvalResult IncrementalEvaluator::evaluate() {
  if (!bound()) {
    throw std::logic_error("IncrementalEvaluator: evaluate before bind");
  }
  net_.refresh();

  const Benchmark& bench = eval_.bench_;
  const TransientSimulator& sim = eval_.sim_;
  const Ps source_input_slew = eval_.options_.source_input_slew;
  const bool batch = eval_.options_.batch;
  const std::vector<int>& topo = net_.topo_slots();
  const std::size_t nc = bench.tech.corners.size();
  const std::size_t combos = nc * kNumTransitions;
  const std::size_t slot_count = net_.slot_count();

  if (timings_.size() < slot_count) timings_.resize(slot_count);

  EvalResult result;
  result.corners.resize(nc);
  for (std::size_t ci = 0; ci < nc; ++ci) {
    result.corners[ci].vdd = bench.tech.corners[ci];
    for (auto& per_transition : result.corners[ci].sinks) {
      per_transition.assign(bench.sinks.size(), SinkTiming{});
    }
  }

  // Same StageEvent recurrence — and the same order of additions along
  // every root-to-sink path — as the full evaluate_netlist() propagation;
  // all timing arithmetic goes through the shared helpers above.  The
  // sweep is slot-outer with one propagation front per (corner x
  // transition) combination (combo c owns the slice [c * slot_count,
  // (c + 1) * slot_count) of `events`/`scheduled`), so a slot's cache
  // misses across all combos can be gathered and handed to the batch
  // kernel together.  Each combo's events depend only on upstream slots
  // of the same combo and each cache entry belongs to exactly one combo,
  // so reordering combos inside a slot changes no value — batched and
  // scalar modes are bit-identical to each other and to the corner-outer
  // sweep this replaces.
  std::vector<StageEvent> events(combos * slot_count);
  std::vector<char> scheduled(combos * slot_count, 0);
  if (!topo.empty()) {
    const auto root = static_cast<std::size_t>(topo.front());
    for (std::size_t c = 0; c < combos; ++c) {
      events[c * slot_count + root] =
          StageEvent{0.0, source_input_slew,
                     static_cast<Transition>(c % kNumTransitions)};
      scheduled[c * slot_count + root] = 1;
    }
  }

  for (const int slot : topo) {
    const Stage& stage = net_.stage(slot);
    const std::uint64_t version = net_.version(slot);
    const auto s = static_cast<std::size_t>(slot);

    std::vector<CachedTiming>& per_slot = timings_[s];
    if (per_slot.size() != combos) per_slot.assign(combos, CachedTiming{});

    miss_combos_.clear();
    miss_drives_.clear();

    for (std::size_t ci = 0; ci < nc; ++ci) {
      const Volt vdd = bench.tech.corners[ci];
      for (int t = 0; t < kNumTransitions; ++t) {
        const std::size_t c = ci * kNumTransitions + static_cast<std::size_t>(t);
        // Same fail-fast invariant as the full propagation: the stage
        // graph (maintained across splits/merges/sweeps) must hand every
        // slot its event before the slot is processed — a repair bug must
        // throw, not return plausible timings from a zero event.
        if (!scheduled[c * slot_count + s]) {
          throw std::logic_error(
              "IncrementalEvaluator: stage scheduled out of order");
        }
        const StageEvent& ev = events[c * slot_count + s];
        CachedTiming& entry = per_slot[c];

        // Reuse is allowed exactly when every input of the simulation
        // matches the cached call: same stage contents (version), same
        // input direction (fixes r_drv via out_dir) and bit-equal input
        // slew.  The corner and transition are part of the cache key.
        if (entry.version != version || entry.in_dir != ev.dir ||
            entry.in_slew != ev.slew) {
          const Transition out_dir = stage_output_dir(stage, ev.dir);
          const DriverView drv = stage_driver_view(stage, bench.tech, vdd, out_dir);
          if (batch) {
            miss_combos_.push_back(static_cast<int>(c));
            miss_drives_.push_back(BatchDrive{drv.r_drv, drv.intrinsic, ev.slew});
          } else {
            entry.taps = sim.simulate_stage(stage, drv.r_drv, drv.intrinsic,
                                            ev.slew,
                                            &elmore_.get(slot, version, stage));
            eval_.scalar_stage_evals_.fetch_add(1, std::memory_order_relaxed);
          }
          entry.version = version;
          entry.in_dir = ev.dir;
          entry.in_slew = ev.slew;
          ++stage_sims_;
        } else {
          ++stage_reuses_;
        }
      }
    }

    // Sweep all of this slot's cache misses through the batch kernel in
    // combo order, borrowing the cached Elmore sweep — the same inputs the
    // scalar path hands simulate_stage(), through the same integrator core.
    if (batch && !miss_combos_.empty()) {
      const ElmoreStage& elm = elmore_.get(slot, version, stage);
      const ElmoreView borrowed{elm.tau_data(), elm.total_cap()};
      const std::size_t nt = stage.taps.size();
      if (miss_combos_.size() == 1) {
        // Single miss (the warm-cache common case): the kernel writes the
        // cache entry in place — no staging row, no copy.
        CachedTiming& entry = per_slot[static_cast<std::size_t>(miss_combos_[0])];
        entry.taps.resize(nt);
        sim.simulate_stage_batch(net_.soa().view(slot), miss_drives_.data(), 1,
                                 entry.taps.data(), scratch_, &borrowed);
      } else {
        miss_taps_.resize(miss_combos_.size() * nt);
        sim.simulate_stage_batch(net_.soa().view(slot), miss_drives_.data(),
                                 miss_combos_.size(), miss_taps_.data(),
                                 scratch_, &borrowed);
        for (std::size_t m = 0; m < miss_combos_.size(); ++m) {
          CachedTiming& entry = per_slot[static_cast<std::size_t>(miss_combos_[m])];
          entry.taps.assign(
              miss_taps_.begin() + static_cast<std::ptrdiff_t>(m * nt),
              miss_taps_.begin() + static_cast<std::ptrdiff_t>((m + 1) * nt));
        }
      }
      eval_.batched_stage_evals_.fetch_add(
          static_cast<long>(miss_combos_.size()), std::memory_order_relaxed);
    }

    for (std::size_t ci = 0; ci < nc; ++ci) {
      for (int t = 0; t < kNumTransitions; ++t) {
        const std::size_t c = ci * kNumTransitions + static_cast<std::size_t>(t);
        const StageEvent ev = events[c * slot_count + s];
        fan_out_taps(stage, ev, stage_output_dir(stage, ev.dir),
                     per_slot[c].taps.data(), result.corners[ci], t,
                     [&](int child, const StageEvent& e) {
                       events[c * slot_count + static_cast<std::size_t>(child)] = e;
                       scheduled[c * slot_count + static_cast<std::size_t>(child)] = 1;
                     });
      }
    }
  }

  aggregate_corners(result, bench);
  account_capacitance(result, *tree_, bench, eval_.sink_caps_);

  eval_.sim_runs_.fetch_add(1, std::memory_order_relaxed);
  eval_.incremental_evals_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

}  // namespace contango

#pragma once

#include <vector>

#include "rctree/extract.h"

namespace contango {

class ElmoreStage;  // analysis/elmore.h

/// Timing measured at one tap of a stage by waveform analysis.
struct TapTiming {
  Ps delay = 0.0;  ///< driver-input 50% crossing to tap 50% crossing
  Ps slew = 0.0;   ///< 10%-90% transition time at the tap
};

/// Numerical options of the transient engine.
struct TransientOptions {
  /// Timestep = clamp(tau_char / time_step_div, min_step, max_step) where
  /// tau_char is the stage's dominant time constant estimate.
  double time_step_div = 80.0;
  Ps min_step = 0.02;
  Ps max_step = 2.0;

  /// Driver waveform model constants (see simulate_stage).
  double slew_to_delay = 0.12;  ///< extra driver delay per ps of input slew
  double slew_feedthrough = 0.5;  ///< source ramp lengthening per ps input slew
  Ps ramp_base = 2.0;             ///< minimum source ramp duration
};

/// SPICE-substitute engine: trapezoidal integration of each stage's RC tree
/// with an O(n) sparse tree factorization per step.
///
/// Driver model: a Thevenin source behind the composite buffer's output
/// resistance.  After the driver input crosses 50% (stage-local t = 0) the
/// source waits the intrinsic delay plus a slew-dependent penalty, then
/// ramps linearly across the supply over a duration that grows with input
/// slew.  Output polarity, supply corner and rise/fall asymmetry enter only
/// through the effective driver resistance and intrinsic delay, which the
/// caller computes; the RC network is linear, so rising and falling
/// responses are mirrors and we always integrate a normalized 0 -> 1 swing.
///
/// This reproduces the properties Contango's optimizations rely on:
/// resistive shielding in long wires, slew propagation through stages, and
/// the impact of slew on delay — the effects the paper lists as missing
/// from closed-form models (section III-A).
class TransientSimulator {
 public:
  explicit TransientSimulator(TransientOptions options = {})
      : options_(options) {}

  /// Simulates one stage.  `r_drv` is the effective driver resistance,
  /// `intrinsic` the effective driver intrinsic delay, `input_slew` the
  /// 10-90% transition time at the driver input.  Returns one TapTiming per
  /// stage tap (same order as stage.taps).
  ///
  /// `elmore` optionally supplies the stage's Elmore sweep (used for
  /// timestep selection); pass the ElmoreCache entry of the stage to skip
  /// rebuilding it per call.  It must have been built from `stage`'s
  /// current contents; results are bit-identical either way.
  std::vector<TapTiming> simulate_stage(const Stage& stage, KOhm r_drv,
                                        Ps intrinsic, Ps input_slew,
                                        const ElmoreStage* elmore = nullptr) const;

  const TransientOptions& options() const { return options_; }

 private:
  TransientOptions options_;
};

}  // namespace contango

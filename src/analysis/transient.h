#pragma once

#include <vector>

#include "rctree/extract.h"
#include "rctree/soa.h"

namespace contango {

class ElmoreStage;  // analysis/elmore.h

/// Timing measured at one tap of a stage by waveform analysis.
struct TapTiming {
  Ps delay = 0.0;  ///< driver-input 50% crossing to tap 50% crossing
  Ps slew = 0.0;   ///< 10%-90% transition time at the tap
};

/// Numerical options of the transient engine.
struct TransientOptions {
  /// Timestep = clamp(tau_char / time_step_div, min_step, max_step) where
  /// tau_char is the stage's dominant time constant estimate.
  double time_step_div = 80.0;
  Ps min_step = 0.02;
  Ps max_step = 2.0;

  /// Driver waveform model constants (see simulate_stage).
  double slew_to_delay = 0.12;  ///< extra driver delay per ps of input slew
  double slew_feedthrough = 0.5;  ///< source ramp lengthening per ps input slew
  Ps ramp_base = 2.0;             ///< minimum source ramp duration
};

/// One right-hand side of a batched stage simulation: the effective driver
/// view plus the input slew of one (corner x transition) combination — or
/// of one Monte-Carlo trial's combination.
struct BatchDrive {
  KOhm r_drv = 0.0;
  Ps intrinsic = 0.0;
  Ps input_slew = 0.0;
};

/// Borrowed Elmore sweep of a stage (tau per RC node + total cap), e.g. an
/// ElmoreCache entry; lets the batch kernel skip its in-kernel sweep.
struct ElmoreView {
  const Ps* tau = nullptr;
  Ff total_cap = 0.0;
};

/// Reusable workspace of the transient kernel: per-node factorization and
/// state arrays plus per-tap threshold bookkeeping, grown on demand and
/// recycled across stages, combos and trials so the hot loop never
/// allocates.  Each thread needs its own instance.
struct TransientScratch {
  std::vector<double> g;      ///< conductance to parent (shared per stage)
  std::vector<double> cdown;  ///< in-kernel Elmore sweep (when not borrowed)
  std::vector<double> tau;
  std::vector<double> adiag;  ///< per-combo factorization
  std::vector<double> mult;
  std::vector<double> v;      ///< per-combo integration state
  std::vector<double> rhs;
  std::vector<double> gv;
  std::vector<double> tap_prev;
  struct Crossings {
    double t10 = -1.0, t50 = -1.0, t90 = -1.0;
  };
  std::vector<Crossings> cross;

  // AoS -> SoA packing buffers of the scalar simulate_stage wrapper.
  std::vector<Ff> pack_cap;
  std::vector<KOhm> pack_res;
  std::vector<int> pack_parent;
  std::vector<int> pack_tap_rc;
};

/// SPICE-substitute engine: trapezoidal integration of each stage's RC tree
/// with an O(n) sparse tree factorization per step.
///
/// Driver model: a Thevenin source behind the composite buffer's output
/// resistance.  After the driver input crosses 50% (stage-local t = 0) the
/// source waits the intrinsic delay plus a slew-dependent penalty, then
/// ramps linearly across the supply over a duration that grows with input
/// slew.  Output polarity, supply corner and rise/fall asymmetry enter only
/// through the effective driver resistance and intrinsic delay, which the
/// caller computes; the RC network is linear, so rising and falling
/// responses are mirrors and we always integrate a normalized 0 -> 1 swing.
///
/// This reproduces the properties Contango's optimizations rely on:
/// resistive shielding in long wires, slew propagation through stages, and
/// the impact of slew on delay — the effects the paper lists as missing
/// from closed-form models (section III-A).
///
/// The engine has one integrator core, simulate_stage_batch(): it reads the
/// stage through a SoA view, hoists everything drive-independent — the
/// conductance array, the Elmore sweep, the worst tap tau — out of the
/// per-drive work, and then runs each drive's trapezoidal integration
/// back-to-back over the same cached stage data.  simulate_stage() is the
/// scalar wrapper: it packs the AoS stage into a thread-local scratch and
/// runs the same core with a batch of one, so scalar and batched results
/// are bit-identical by construction (same arithmetic, same order, same
/// values — only the storage layout differs).
class TransientSimulator {
 public:
  explicit TransientSimulator(TransientOptions options = {})
      : options_(options) {}

  /// Simulates one stage.  `r_drv` is the effective driver resistance,
  /// `intrinsic` the effective driver intrinsic delay, `input_slew` the
  /// 10-90% transition time at the driver input.  Returns one TapTiming per
  /// stage tap (same order as stage.taps).
  ///
  /// `elmore` optionally supplies the stage's Elmore sweep (used for
  /// timestep selection); pass the ElmoreCache entry of the stage to skip
  /// rebuilding it per call.  It must have been built from `stage`'s
  /// current contents; results are bit-identical either way.
  std::vector<TapTiming> simulate_stage(const Stage& stage, KOhm r_drv,
                                        Ps intrinsic, Ps input_slew,
                                        const ElmoreStage* elmore = nullptr) const;

  /// Batched integrator core: simulates `stage` once per entry of
  /// `drives[0..count)`, writing `out[b * stage.num_taps + k]` for drive b,
  /// tap k (the caller provides `count * stage.num_taps` slots).  The
  /// stage's conductances and Elmore sweep are computed once and shared;
  /// each drive's timestep, factorization and trapezoidal integration run
  /// exactly the scalar arithmetic, so every row is bit-identical to the
  /// simulate_stage() call with the same drive.
  ///
  /// `elmore` optionally borrows a prebuilt sweep (ElmoreCache entry built
  /// from the same stage contents); null computes it in-kernel.
  void simulate_stage_batch(const NetlistSoa::View& stage,
                            const BatchDrive* drives, std::size_t count,
                            TapTiming* out, TransientScratch& scratch,
                            const ElmoreView* elmore = nullptr) const;

  const TransientOptions& options() const { return options_; }

 private:
  TransientOptions options_;
};

}  // namespace contango

#pragma once

#include <array>
#include <atomic>
#include <vector>

#include "analysis/transient.h"
#include "netlist/benchmark.h"
#include "rctree/clocktree.h"
#include "rctree/extract.h"

namespace contango {

/// Transition direction at the clock source.
enum class Transition : int { kRise = 0, kFall = 1 };
inline constexpr int kNumTransitions = 2;

/// Latency and slew of one sink for one (corner, source transition) pair.
struct SinkTiming {
  Ps latency = 0.0;
  Ps slew = 0.0;
  bool reached = false;  ///< false if the sink is missing from the tree
};

/// Timing of the full network at one supply corner.
struct CornerTiming {
  Volt vdd = 0.0;
  /// sinks[transition][sink_index]
  std::array<std::vector<SinkTiming>, kNumTransitions> sinks;
  Ps max_slew = 0.0;  ///< worst 10-90% slew at any tap (sinks + buffer inputs)

  Ps max_latency() const;
  Ps min_latency() const;
  /// Worst skew over transitions: max over t of (max - min latency).
  Ps skew() const;
};

/// Result of one Clock-Network Evaluation (CNE) pass.
struct EvalResult {
  std::vector<CornerTiming> corners;  ///< same order as Technology::corners

  Ps nominal_skew = 0.0;  ///< corner 0 skew (the contest's "skew")
  Ps clr = 0.0;           ///< max latency @ low corner - min latency @ nominal
  Ps max_latency = 0.0;   ///< nominal corner
  Ps worst_slew = 0.0;    ///< across all corners
  Ff total_cap = 0.0;
  bool slew_violation = false;
  bool cap_violation = false;
  bool all_sinks_reached = true;

  bool legal() const { return !slew_violation && !cap_violation && all_sinks_reached; }
};

/// Options of the evaluation harness.
struct EvalOptions {
  ExtractOptions extract;
  TransientOptions transient;
  Ps source_input_slew = 10.0;  ///< transition time of the external clock
};

struct VariationModel;  // analysis/variation.h
struct McOptions;       // analysis/montecarlo.h
struct McReport;        // analysis/montecarlo.h

/// \brief Full Clock-Network Evaluation over an already-extracted staged
/// netlist: every (supply corner x source transition) combination, skew,
/// CLR and slew aggregation.
///
/// This is the corner-propagation core shared by Evaluator::evaluate() and
/// the Monte-Carlo variation engine (analysis/montecarlo.h).  Capacitance
/// accounting (`total_cap`, `cap_violation`) is the caller's job — it needs
/// the ClockTree, not the staged netlist.
///
/// \param stage_vdd_delta optional per-stage supply offsets (volts), indexed
///        like net.stages; each corner evaluates stage i at
///        `corner + (*stage_vdd_delta)[i]`.  nullptr means every stage sits
///        exactly at the corner voltage — bit-identical to the nominal path.
EvalResult evaluate_netlist(const StagedNetlist& net, const Benchmark& bench,
                            const TransientSimulator& sim, Ps source_input_slew,
                            const std::vector<Volt>* stage_vdd_delta = nullptr);

/// Fills `total_cap`/`cap_violation` of `result` — the capacitance half of
/// CNE that evaluate_netlist() cannot compute (it needs the ClockTree).
/// `sink_caps[i]` is the pin cap of benchmark sink i.
void account_capacitance(EvalResult& result, const ClockTree& tree,
                         const Benchmark& bench, const std::vector<Ff>& sink_caps);

/// Clock-Network Evaluation: runs the transient engine over every stage of
/// the tree for every (supply corner x source transition) combination and
/// aggregates skew, CLR, slew and capacitance checks.  Each evaluate() call
/// counts as one simulation run — the analogue of the paper's SPICE-run
/// budget (Table V reports those counts).
class Evaluator {
 public:
  explicit Evaluator(const Benchmark& bench, EvalOptions options = {});

  EvalResult evaluate(const ClockTree& tree);

  /// \brief Monte-Carlo evaluation under process/supply variation: runs
  /// `trials` randomized perturbations of the network (per-stage Vdd
  /// deviates, global wire R/C scaling, per-sink load jitter — see
  /// analysis/variation.h) and aggregates streaming skew/CLR/latency
  /// statistics plus yield against a skew target.
  ///
  /// Each trial counts as one simulation run.  Results are bit-identical
  /// for any worker count (analysis/montecarlo.h).  Trials use this
  /// Evaluator's own EvalOptions — `options.eval` is ignored — so the MC
  /// distribution is always comparable to this Evaluator's nominal
  /// evaluate().  Defined in montecarlo.cpp.
  McReport evaluate_mc(const ClockTree& tree, int trials,
                       const VariationModel& model, const McOptions& options);

  /// Number of evaluate() calls so far ("SPICE runs").  Atomic so that
  /// per-thread evaluator counts can be read and aggregated (e.g. into a
  /// suite-wide total) while other workers are still evaluating.
  int sim_runs() const { return sim_runs_.load(std::memory_order_relaxed); }
  void reset_sim_runs() { sim_runs_.store(0, std::memory_order_relaxed); }

  const Benchmark& benchmark() const { return bench_; }
  const EvalOptions& options() const { return options_; }

 private:
  const Benchmark& bench_;
  EvalOptions options_;
  TransientSimulator sim_;
  std::vector<Ff> sink_caps_;
  std::atomic<int> sim_runs_{0};
};

/// Effective driver resistance for a stage driver: applies supply-corner
/// scaling and rise/fall asymmetry to the nominal output resistance.
KOhm effective_driver_res(KOhm nominal, const Technology& tech, Volt vdd,
                          Transition output_transition);

/// Effective intrinsic delay under supply scaling.
Ps effective_intrinsic(Ps nominal, const Technology& tech, Volt vdd);

}  // namespace contango

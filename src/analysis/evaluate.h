#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "analysis/elmore.h"
#include "analysis/transient.h"
#include "netlist/benchmark.h"
#include "rctree/clocktree.h"
#include "rctree/extract.h"

namespace contango {

/// Transition direction at the clock source.
enum class Transition : int { kRise = 0, kFall = 1 };
inline constexpr int kNumTransitions = 2;

/// Latency and slew of one sink for one (corner, source transition) pair.
struct SinkTiming {
  Ps latency = 0.0;
  Ps slew = 0.0;
  bool reached = false;  ///< false if the sink is missing from the tree
};

/// Timing of the full network at one supply corner.
struct CornerTiming {
  Volt vdd = 0.0;
  /// sinks[transition][sink_index]
  std::array<std::vector<SinkTiming>, kNumTransitions> sinks;
  Ps max_slew = 0.0;  ///< worst 10-90% slew at any tap (sinks + buffer inputs)

  Ps max_latency() const;
  Ps min_latency() const;
  /// Worst skew over transitions: max over t of (max - min latency).
  Ps skew() const;
};

/// Result of one Clock-Network Evaluation (CNE) pass.
struct EvalResult {
  std::vector<CornerTiming> corners;  ///< same order as Technology::corners

  Ps nominal_skew = 0.0;  ///< corner 0 skew (the contest's "skew")
  Ps clr = 0.0;           ///< max latency @ low corner - min latency @ nominal
  Ps max_latency = 0.0;   ///< nominal corner
  Ps worst_slew = 0.0;    ///< across all corners
  Ff total_cap = 0.0;
  bool slew_violation = false;
  bool cap_violation = false;
  bool all_sinks_reached = true;

  /// Constraint metrics (netlist/constraints.h), filled only when the
  /// benchmark carries a non-trivial constraint block; all three stay at
  /// their defaults otherwise, so the legacy result is bit-identical.
  /// Per-domain skew `Tmax_d - Tmin_d` at the nominal corner, worst over
  /// transitions (the per-domain analogue of `nominal_skew`).
  std::vector<Ps> domain_skews;
  /// Worst per-sink window violation over every (corner, transition):
  /// max over sinks of `max(lo - r, r - hi, 0)` where `r` is the sink's
  /// arrival relative to the earliest reached sink.  0 = all windows hold.
  Ps worst_window_violation = 0.0;
  /// Worst inter-domain bound violation over every (corner, transition):
  /// max over bounds {a, b, B} of `max(Tmax_a - Tmin_b, Tmax_b - Tmin_a) - B`
  /// clamped at 0.  0 = all bounds hold.
  Ps worst_domain_bound_violation = 0.0;

  bool legal() const { return !slew_violation && !cap_violation && all_sinks_reached; }

  /// Worst violation of the generalized constraint vector (0 when every
  /// window and inter-domain bound holds — always 0 for trivial blocks).
  Ps constraint_violation() const {
    return worst_window_violation > worst_domain_bound_violation
               ? worst_window_violation
               : worst_domain_bound_violation;
  }
  bool constraints_met() const { return constraint_violation() <= 0.0; }
};

/// Options of the evaluation harness.
struct EvalOptions {
  ExtractOptions extract;
  TransientOptions transient;
  Ps source_input_slew = 10.0;  ///< transition time of the external clock

  /// Run every CNE pass through the batched SoA kernel — one
  /// simulate_stage_batch() call per stage covering all (corner x
  /// transition) right-hand sides — instead of one scalar simulate_stage()
  /// call per combination.  Results are bit-identical either way (the two
  /// paths share one integrator core); this switch exists for verification
  /// and benchmarking.  Suite drivers bind it to the CONTANGO_BATCH env
  /// knob; 0 forces the scalar path, mirroring CONTANGO_INCREMENTAL=0.
  bool batch = true;
};

struct VariationModel;  // analysis/variation.h
struct McOptions;       // analysis/montecarlo.h
struct McReport;        // analysis/montecarlo.h

/// \brief Full Clock-Network Evaluation over an already-extracted staged
/// netlist: every (supply corner x source transition) combination, skew,
/// CLR and slew aggregation.
///
/// This is the corner-propagation core shared by Evaluator::evaluate() and
/// the Monte-Carlo variation engine (analysis/montecarlo.h).  Capacitance
/// accounting (`total_cap`, `cap_violation`) is the caller's job — it needs
/// the ClockTree, not the staged netlist.
///
/// \param stage_vdd_delta optional per-stage supply offsets (volts), indexed
///        like net.stages; each corner evaluates stage i at
///        `corner + (*stage_vdd_delta)[i]`.  nullptr means every stage sits
///        exactly at the corner voltage — bit-identical to the nominal path.
EvalResult evaluate_netlist(const StagedNetlist& net, const Benchmark& bench,
                            const TransientSimulator& sim, Ps source_input_slew,
                            const std::vector<Volt>* stage_vdd_delta = nullptr);

/// \brief Batched twin of evaluate_netlist(): one SoA kernel pass per stage
/// for all (corner x transition) right-hand sides.
///
/// The propagation is restructured stage-outer: stages are visited once in
/// topological order, every combination's input event is resolved (parents
/// precede children, so all combinations of a stage's parent are already
/// final), and simulate_stage_batch() sweeps the whole drive set over the
/// stage's SoA slice — sharing the conductance array and Elmore sweep that
/// the scalar path rebuilds per combination.  Every per-combination number
/// comes out of the same integrator core on the same values, so the result
/// is **bit-identical** to evaluate_netlist() on the same netlist.
///
/// \param soa SoA mirror of `net` with slot i == stage i (NetlistSoa::build,
///        or a Monte-Carlo trial copy carrying perturbed values); `net`
///        still supplies the topology/driver metadata.
/// \param scratch optional reusable kernel workspace (per thread)
EvalResult evaluate_netlist_batch(const StagedNetlist& net, const NetlistSoa& soa,
                                  const Benchmark& bench,
                                  const TransientSimulator& sim,
                                  Ps source_input_slew,
                                  const std::vector<Volt>* stage_vdd_delta = nullptr,
                                  TransientScratch* scratch = nullptr);

/// Fills `total_cap`/`cap_violation` of `result` — the capacitance half of
/// CNE that evaluate_netlist() cannot compute (it needs the ClockTree).
/// `sink_caps[i]` is the pin cap of benchmark sink i.
void account_capacitance(EvalResult& result, const ClockTree& tree,
                         const Benchmark& bench, const std::vector<Ff>& sink_caps);

/// Clock-Network Evaluation: runs the transient engine over every stage of
/// the tree for every (supply corner x source transition) combination and
/// aggregates skew, CLR, slew and capacitance checks.  Each evaluate() call
/// counts as one simulation run — the analogue of the paper's SPICE-run
/// budget (Table V reports those counts).
class Evaluator {
 public:
  explicit Evaluator(const Benchmark& bench, EvalOptions options = {});

  EvalResult evaluate(const ClockTree& tree);

  /// \brief Monte-Carlo evaluation under process/supply variation: runs
  /// `trials` randomized perturbations of the network (per-stage Vdd
  /// deviates, global wire R/C scaling, per-sink load jitter — see
  /// analysis/variation.h) and aggregates streaming skew/CLR/latency
  /// statistics plus yield against a skew target.
  ///
  /// Each trial counts as one simulation run.  Results are bit-identical
  /// for any worker count (analysis/montecarlo.h).  Trials use this
  /// Evaluator's own EvalOptions — `options.eval` is ignored — so the MC
  /// distribution is always comparable to this Evaluator's nominal
  /// evaluate().  Defined in montecarlo.cpp.
  McReport evaluate_mc(const ClockTree& tree, int trials,
                       const VariationModel& model, const McOptions& options);

  /// Number of evaluate() calls so far ("SPICE runs").  Atomic so that
  /// per-thread evaluator counts can be read and aggregated (e.g. into a
  /// suite-wide total) while other workers are still evaluating.
  /// Every run is counted exactly once more as either a *full* evaluation
  /// (from-scratch extraction + whole-tree propagation: evaluate(),
  /// calibration probes, Monte-Carlo trials) or an *incremental* one
  /// (IncrementalEvaluator::evaluate, re-propagated along dirty paths
  /// only), so sim_runs() == full_evals() + incremental_evals().
  int sim_runs() const { return sim_runs_.load(std::memory_order_relaxed); }
  int full_evals() const { return full_evals_.load(std::memory_order_relaxed); }
  int incremental_evals() const {
    return incremental_evals_.load(std::memory_order_relaxed);
  }

  /// Finer-grained work accounting in (stage x corner x transition) units:
  /// transient stage simulations executed through the batched SoA kernel
  /// vs. the scalar path, across evaluate(), IncrementalEvaluator and
  /// evaluate_mc().  With `options().batch` (the default) the scalar count
  /// stays 0 and vice versa — the suite report and the Table V/VI benches
  /// surface the split.
  long batched_stage_evals() const {
    return batched_stage_evals_.load(std::memory_order_relaxed);
  }
  long scalar_stage_evals() const {
    return scalar_stage_evals_.load(std::memory_order_relaxed);
  }

  void reset_sim_runs() {
    sim_runs_.store(0, std::memory_order_relaxed);
    full_evals_.store(0, std::memory_order_relaxed);
    incremental_evals_.store(0, std::memory_order_relaxed);
    batched_stage_evals_.store(0, std::memory_order_relaxed);
    scalar_stage_evals_.store(0, std::memory_order_relaxed);
  }

  const Benchmark& benchmark() const { return bench_; }
  const EvalOptions& options() const { return options_; }
  const TransientSimulator& simulator() const { return sim_; }
  const std::vector<Ff>& sink_caps() const { return sink_caps_; }

 private:
  friend class IncrementalEvaluator;

  const Benchmark& bench_;
  EvalOptions options_;
  TransientSimulator sim_;
  std::vector<Ff> sink_caps_;
  std::atomic<int> sim_runs_{0};
  std::atomic<int> full_evals_{0};
  std::atomic<int> incremental_evals_{0};
  std::atomic<long> batched_stage_evals_{0};
  std::atomic<long> scalar_stage_evals_{0};
  /// Reusable batched-evaluation workspace: the SoA mirror rebuilt per
  /// evaluate() (buffers recycled) and the kernel scratch.  evaluate() is
  /// not concurrently reentrant — each suite worker owns its Evaluator.
  NetlistSoa soa_;
  TransientScratch scratch_;
};

/// \brief Incremental Clock-Network Evaluation over a persistent RcNetlist.
///
/// Binds to one evolving ClockTree and keeps three layers of state alive
/// between evaluations:
///   * the staged RC netlist itself (RcNetlist — dirty stages re-extract);
///   * per-stage Elmore sweeps (ElmoreCache — bottom-up load state);
///   * per-(stage x corner x source transition) transient tap timings —
///     the top-down delay state.
///
/// evaluate() refreshes the netlist, then propagates arrival events
/// through the stage graph re-running the transient engine only where a
/// stage's contents or its input (direction, slew) changed; everything
/// else reuses the cached tap timings, and only the cheap arrival-time
/// additions are redone.  A stage is re-simulated exactly when any input
/// of simulate_stage() differs from the cached call, so the result is
/// **bit-identical** to Evaluator::evaluate() on the same tree — the
/// equivalence the IVC loops (cts/pass.h) and the fuzz tests rely on.
///
/// Edits reach the engine through a TreeEditSession constructed with
/// netlist(); each evaluate() counts one simulation run (an incremental
/// one) on the owning Evaluator.
class IncrementalEvaluator {
 public:
  explicit IncrementalEvaluator(Evaluator& eval) : eval_(eval) {}

  /// (Re)binds to `tree` and schedules a full rebuild.  The tree must
  /// outlive the binding (FlowContext owns both).
  void bind(const ClockTree& tree);
  bool bound() const { return tree_ != nullptr; }
  const ClockTree* bound_tree() const { return tree_; }

  /// Dirty-tracking handle for TreeEditSession.  \pre bound()
  RcNetlist& netlist() { return net_; }

  /// Everything is stale (the bound tree changed behind our back): the
  /// next evaluate() rebuilds and re-simulates from scratch.
  void invalidate_all() { net_.mark_all_dirty(); }

  /// One CNE pass over the bound tree; see class comment.  \pre bound()
  EvalResult evaluate();

  /// simulate_stage() calls spent / avoided by cache hits so far —
  /// (stage x corner x transition) units of transient work.
  long stage_sims() const { return stage_sims_; }
  long stage_reuses() const { return stage_reuses_; }

 private:
  struct CachedTiming {
    std::uint64_t version = 0;  ///< 0 = invalid
    Transition in_dir = Transition::kRise;
    Ps in_slew = 0.0;
    std::vector<TapTiming> taps;
  };

  Evaluator& eval_;
  const ClockTree* tree_ = nullptr;
  RcNetlist net_;
  ElmoreCache elmore_;
  /// timings_[slot][corner * kNumTransitions + transition]
  std::vector<std::vector<CachedTiming>> timings_;
  long stage_sims_ = 0;
  long stage_reuses_ = 0;
  /// Batched-mode workspace: cache-missing combos of one slot are gathered
  /// here and simulated in one simulate_stage_batch() sweep over the
  /// netlist's SoA slice.
  TransientScratch scratch_;
  std::vector<BatchDrive> miss_drives_;
  std::vector<int> miss_combos_;
  std::vector<TapTiming> miss_taps_;
};

/// Effective driver resistance for a stage driver: applies supply-corner
/// scaling and rise/fall asymmetry to the nominal output resistance.
KOhm effective_driver_res(KOhm nominal, const Technology& tech, Volt vdd,
                          Transition output_transition);

/// Effective intrinsic delay under supply scaling.
Ps effective_intrinsic(Ps nominal, const Technology& tech, Volt vdd);

}  // namespace contango

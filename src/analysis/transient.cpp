#include "analysis/transient.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "analysis/elmore.h"
#include "util/units.h"

namespace contango {

std::vector<TapTiming> TransientSimulator::simulate_stage(
    const Stage& stage, KOhm r_drv, Ps intrinsic, Ps input_slew,
    const ElmoreStage* elmore) const {
  const std::size_t n = stage.nodes.size();
  std::vector<TapTiming> result(stage.taps.size());
  if (n == 0) return result;

  // Characteristic time constant for timestep selection and the stop guard.
  std::optional<ElmoreStage> local;
  if (!elmore) elmore = &local.emplace(stage);
  Ps max_tau = 0.0;
  for (const Tap& tap : stage.taps) max_tau = std::max(max_tau, elmore->tau(tap.rc_index));
  const Ps tau_char = std::max(r_drv * elmore->total_cap() + max_tau, 0.5);

  // Driver source waveform: delay then linear ramp (normalized 0 -> 1).
  const Ps t0 = intrinsic + options_.slew_to_delay * input_slew;
  const Ps ramp = options_.ramp_base + options_.slew_feedthrough * input_slew;
  auto source = [&](Ps t) {
    if (t <= t0) return 0.0;
    if (t >= t0 + ramp) return 1.0;
    return (t - t0) / ramp;
  };

  const Ps h = std::clamp(std::min(tau_char / options_.time_step_div, ramp / 4.0),
                          options_.min_step, options_.max_step);
  const Ps t_stop = t0 + ramp + 40.0 * tau_char;

  // Trapezoidal discretization:  (C/h + G/2) v+  =  (C/h) v - (G v)/2 + (b+ + b)/2.
  // The LHS matrix is constant; factor it once with a leaf-to-root sweep.
  const KOhm g_drv = 1.0 / std::max(r_drv, 1e-9);
  std::vector<double> g(n, 0.0);  // conductance to parent
  for (std::size_t i = 1; i < n; ++i) g[i] = 1.0 / std::max(stage.nodes[i].res, 1e-9);

  std::vector<double> adiag(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) adiag[i] = stage.nodes[i].cap / h;
  adiag[0] += g_drv / 2.0;
  for (std::size_t i = 1; i < n; ++i) {
    adiag[i] += g[i] / 2.0;
    adiag[static_cast<std::size_t>(stage.nodes[i].parent)] += g[i] / 2.0;
  }
  // Cholesky-style tree elimination: children have larger indices.
  std::vector<double> mult(n, 0.0);
  for (std::size_t i = n; i-- > 1;) {
    mult[i] = (g[i] / 2.0) / adiag[i];
    adiag[static_cast<std::size_t>(stage.nodes[i].parent)] -= (g[i] / 2.0) * mult[i];
  }

  std::vector<double> v(n, 0.0), rhs(n, 0.0), gv(n, 0.0);

  // Threshold bookkeeping per tap.
  constexpr double kTh10 = 0.1, kTh50 = 0.5, kTh90 = 0.9;
  struct Crossings {
    double t10 = -1.0, t50 = -1.0, t90 = -1.0;
  };
  std::vector<Crossings> cross(stage.taps.size());
  std::vector<double> tap_prev(stage.taps.size(), 0.0);

  std::size_t pending = stage.taps.size();
  Ps t = 0.0;
  while (pending > 0 && t < t_stop) {
    // rhs = (C/h) v - (G v)/2 + (b(t) + b(t+h))/2.
    std::fill(gv.begin(), gv.end(), 0.0);
    gv[0] = g_drv * v[0];
    for (std::size_t i = 1; i < n; ++i) {
      const auto p = static_cast<std::size_t>(stage.nodes[i].parent);
      const double flow = g[i] * (v[i] - v[p]);
      gv[i] += flow;
      gv[p] -= flow;
    }
    for (std::size_t i = 0; i < n; ++i) {
      rhs[i] = (stage.nodes[i].cap / h) * v[i] - gv[i] / 2.0;
    }
    rhs[0] += g_drv * (source(t) + source(t + h)) / 2.0;

    // Forward elimination (leaves to root), then back-substitution.
    for (std::size_t i = n; i-- > 1;) {
      rhs[static_cast<std::size_t>(stage.nodes[i].parent)] += mult[i] * rhs[i];
    }
    v[0] = rhs[0] / adiag[0];
    for (std::size_t i = 1; i < n; ++i) {
      v[i] = (rhs[i] + (g[i] / 2.0) * v[static_cast<std::size_t>(stage.nodes[i].parent)]) / adiag[i];
    }

    const Ps t_next = t + h;
    for (std::size_t k = 0; k < stage.taps.size(); ++k) {
      Crossings& c = cross[k];
      if (c.t90 >= 0.0) continue;
      const double prev = tap_prev[k];
      const double now = v[static_cast<std::size_t>(stage.taps[k].rc_index)];
      auto interp = [&](double th) { return t + h * (th - prev) / std::max(now - prev, 1e-12); };
      if (c.t10 < 0.0 && now >= kTh10) c.t10 = interp(kTh10);
      if (c.t50 < 0.0 && now >= kTh50) c.t50 = interp(kTh50);
      if (c.t90 < 0.0 && now >= kTh90) {
        c.t90 = interp(kTh90);
        --pending;
      }
      tap_prev[k] = now;
    }
    t = t_next;
  }

  for (std::size_t k = 0; k < stage.taps.size(); ++k) {
    Crossings& c = cross[k];
    if (c.t10 < 0.0) c.t10 = t_stop;
    if (c.t50 < 0.0) c.t50 = t_stop;
    if (c.t90 < 0.0) c.t90 = t_stop;
    result[k].delay = c.t50;
    result[k].slew = c.t90 - c.t10;
  }
  return result;
}

}  // namespace contango

#include "analysis/transient.h"

#include <algorithm>
#include <cmath>

#include "analysis/elmore.h"
#include "util/units.h"

namespace contango {

std::vector<TapTiming> TransientSimulator::simulate_stage(
    const Stage& stage, KOhm r_drv, Ps intrinsic, Ps input_slew,
    const ElmoreStage* elmore) const {
  const std::size_t n = stage.nodes.size();
  std::vector<TapTiming> result(stage.taps.size());
  if (n == 0) return result;

  // Pack the AoS stage into the thread-local scratch and run the shared
  // batched core with a single drive.  The copies are bit-exact, so this
  // wrapper returns exactly what the historical scalar integrator did.
  thread_local TransientScratch scratch;
  scratch.pack_cap.resize(n);
  scratch.pack_res.resize(n);
  scratch.pack_parent.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch.pack_cap[i] = stage.nodes[i].cap;
    scratch.pack_res[i] = stage.nodes[i].res;
    scratch.pack_parent[i] = stage.nodes[i].parent;
  }
  scratch.pack_tap_rc.resize(stage.taps.size());
  for (std::size_t k = 0; k < stage.taps.size(); ++k) {
    scratch.pack_tap_rc[k] = stage.taps[k].rc_index;
  }

  NetlistSoa::View view;
  view.cap = scratch.pack_cap.data();
  view.res = scratch.pack_res.data();
  view.parent = scratch.pack_parent.data();
  view.num_nodes = n;
  view.tap_rc = scratch.pack_tap_rc.data();
  view.num_taps = stage.taps.size();

  const BatchDrive drive{r_drv, intrinsic, input_slew};
  if (elmore) {
    const ElmoreView borrowed{elmore->tau_data(), elmore->total_cap()};
    simulate_stage_batch(view, &drive, 1, result.data(), scratch, &borrowed);
  } else {
    simulate_stage_batch(view, &drive, 1, result.data(), scratch, nullptr);
  }
  return result;
}

void TransientSimulator::simulate_stage_batch(
    const NetlistSoa::View& stage, const BatchDrive* drives, std::size_t count,
    TapTiming* out, TransientScratch& scratch, const ElmoreView* elmore) const {
  const std::size_t n = stage.num_nodes;
  const std::size_t nt = stage.num_taps;
  for (std::size_t i = 0; i < count * nt; ++i) out[i] = TapTiming{};
  if (n == 0 || count == 0) return;

  const Ff* cap = stage.cap;
  const int* parent = stage.parent;

  // --- drive-independent stage data, computed once per batch ------------

  // Conductance to parent.
  scratch.g.assign(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) {
    scratch.g[i] = 1.0 / std::max(stage.res[i], 1e-9);
  }
  const double* g = scratch.g.data();

  // Elmore sweep for timestep selection and the stop guard — borrowed from
  // the caller's cache, or rebuilt here with exactly the ElmoreStage
  // accumulation order (one reverse cdown/total sweep, one forward tau
  // sweep), so both paths produce identical bits.
  const Ps* tau = nullptr;
  Ff total_cap = 0.0;
  if (elmore) {
    tau = elmore->tau;
    total_cap = elmore->total_cap;
  } else {
    scratch.cdown.assign(n, 0.0);
    scratch.tau.assign(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
      scratch.cdown[i] += cap[i];
      if (parent[i] >= 0) {
        scratch.cdown[static_cast<std::size_t>(parent[i])] += scratch.cdown[i];
      }
      total_cap += cap[i];
    }
    for (std::size_t i = 1; i < n; ++i) {
      scratch.tau[i] = scratch.tau[static_cast<std::size_t>(parent[i])] +
                       stage.res[i] * scratch.cdown[i];
    }
    tau = scratch.tau.data();
  }
  Ps max_tau = 0.0;
  for (std::size_t k = 0; k < nt; ++k) {
    max_tau = std::max(max_tau, tau[static_cast<std::size_t>(stage.tap_rc[k])]);
  }

  // --- per-drive integration, back-to-back over the cached stage --------
  for (std::size_t b = 0; b < count; ++b) {
    const KOhm r_drv = drives[b].r_drv;
    const Ps intrinsic = drives[b].intrinsic;
    const Ps input_slew = drives[b].input_slew;
    TapTiming* result = out + b * nt;

    const Ps tau_char = std::max(r_drv * total_cap + max_tau, 0.5);

    // Driver source waveform: delay then linear ramp (normalized 0 -> 1).
    const Ps t0 = intrinsic + options_.slew_to_delay * input_slew;
    const Ps ramp = options_.ramp_base + options_.slew_feedthrough * input_slew;
    auto source = [&](Ps t) {
      if (t <= t0) return 0.0;
      if (t >= t0 + ramp) return 1.0;
      return (t - t0) / ramp;
    };

    const Ps h = std::clamp(std::min(tau_char / options_.time_step_div, ramp / 4.0),
                            options_.min_step, options_.max_step);
    const Ps t_stop = t0 + ramp + 40.0 * tau_char;

    // Trapezoidal discretization:
    //   (C/h + G/2) v+  =  (C/h) v - (G v)/2 + (b+ + b)/2.
    // The LHS matrix is constant per drive (h depends on the drive); factor
    // it once with a leaf-to-root sweep.
    const KOhm g_drv = 1.0 / std::max(r_drv, 1e-9);
    scratch.adiag.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) scratch.adiag[i] = cap[i] / h;
    scratch.adiag[0] += g_drv / 2.0;
    for (std::size_t i = 1; i < n; ++i) {
      scratch.adiag[i] += g[i] / 2.0;
      scratch.adiag[static_cast<std::size_t>(parent[i])] += g[i] / 2.0;
    }
    // Cholesky-style tree elimination: children have larger indices.
    scratch.mult.assign(n, 0.0);
    for (std::size_t i = n; i-- > 1;) {
      scratch.mult[i] = (g[i] / 2.0) / scratch.adiag[i];
      scratch.adiag[static_cast<std::size_t>(parent[i])] -=
          (g[i] / 2.0) * scratch.mult[i];
    }
    const double* adiag = scratch.adiag.data();
    const double* mult = scratch.mult.data();

    scratch.v.assign(n, 0.0);
    scratch.rhs.assign(n, 0.0);
    scratch.gv.assign(n, 0.0);
    double* v = scratch.v.data();
    double* rhs = scratch.rhs.data();
    double* gv = scratch.gv.data();

    // Threshold bookkeeping per tap.
    constexpr double kTh10 = 0.1, kTh50 = 0.5, kTh90 = 0.9;
    scratch.cross.assign(nt, TransientScratch::Crossings{});
    scratch.tap_prev.assign(nt, 0.0);

    std::size_t pending = nt;
    Ps t = 0.0;
    while (pending > 0 && t < t_stop) {
      // rhs = (C/h) v - (G v)/2 + (b(t) + b(t+h))/2.
      std::fill(scratch.gv.begin(), scratch.gv.end(), 0.0);
      gv[0] = g_drv * v[0];
      for (std::size_t i = 1; i < n; ++i) {
        const auto p = static_cast<std::size_t>(parent[i]);
        const double flow = g[i] * (v[i] - v[p]);
        gv[i] += flow;
        gv[p] -= flow;
      }
      for (std::size_t i = 0; i < n; ++i) {
        rhs[i] = (cap[i] / h) * v[i] - gv[i] / 2.0;
      }
      rhs[0] += g_drv * (source(t) + source(t + h)) / 2.0;

      // Forward elimination (leaves to root), then back-substitution.
      for (std::size_t i = n; i-- > 1;) {
        rhs[static_cast<std::size_t>(parent[i])] += mult[i] * rhs[i];
      }
      v[0] = rhs[0] / adiag[0];
      for (std::size_t i = 1; i < n; ++i) {
        v[i] = (rhs[i] + (g[i] / 2.0) * v[static_cast<std::size_t>(parent[i])]) /
               adiag[i];
      }

      const Ps t_next = t + h;
      for (std::size_t k = 0; k < nt; ++k) {
        TransientScratch::Crossings& c = scratch.cross[k];
        if (c.t90 >= 0.0) continue;
        const double prev = scratch.tap_prev[k];
        const double now = v[static_cast<std::size_t>(stage.tap_rc[k])];
        auto interp = [&](double th) {
          return t + h * (th - prev) / std::max(now - prev, 1e-12);
        };
        if (c.t10 < 0.0 && now >= kTh10) c.t10 = interp(kTh10);
        if (c.t50 < 0.0 && now >= kTh50) c.t50 = interp(kTh50);
        if (c.t90 < 0.0 && now >= kTh90) {
          c.t90 = interp(kTh90);
          --pending;
        }
        scratch.tap_prev[k] = now;
      }
      t = t_next;
    }

    for (std::size_t k = 0; k < nt; ++k) {
      TransientScratch::Crossings& c = scratch.cross[k];
      if (c.t10 < 0.0) c.t10 = t_stop;
      if (c.t50 < 0.0) c.t50 = t_stop;
      if (c.t90 < 0.0) c.t90 = t_stop;
      result[k].delay = c.t50;
      result[k].slew = c.t90 - c.t10;
    }
  }
}

}  // namespace contango

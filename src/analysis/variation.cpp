#include "analysis/variation.h"

#include <algorithm>

#include "util/rng.h"

namespace contango {
namespace {

/// splitmix64 finalizer: avalanche-mixes (seed, trial) into a substream
/// seed.  Sequential trial indices land in statistically unrelated regions
/// of the mt19937_64 seed space, so per-trial substreams are decorrelated.
std::uint64_t mix_substream(std::uint64_t seed, std::uint64_t trial) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (trial + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Multiplicative scale 1 + N(0, sigma), floored away from zero.
double scale_deviate(Rng& rng, double sigma) {
  return std::max(1.0 + rng.gaussian(0.0, sigma), 0.05);
}

}  // namespace

TrialVariation sample_trial(const VariationModel& model, const Technology& tech,
                            int trial, std::size_t num_stages,
                            std::size_t num_sinks) {
  Rng rng(mix_substream(model.seed, static_cast<std::uint64_t>(trial)));
  TrialVariation v;

  // Draw order is part of the substream contract: globals first, then the
  // per-stage vector, then the per-sink vector.  With a zero sigma the
  // gaussian still consumes its engine words, so enabling one variation
  // source never reshuffles the draws of another.
  v.wire_r_scale = scale_deviate(rng, model.sigma_wire_r);
  v.wire_c_scale = scale_deviate(rng, model.sigma_wire_c);

  const Volt vdd_floor = 0.25 * tech.vdd_nom;
  const Volt sigma_volts = model.sigma_vdd * tech.vdd_nom;
  // Clamp negative deltas against the lowest evaluation corner so
  // vdd_corner + delta stays physical at every corner.  The clamp can only
  // ever pull deltas toward zero, never push them positive: a corner that
  // already sits below the floor must not bias zero-model trials.
  Volt lowest = tech.vdd_nom;
  for (Volt c : tech.corners) lowest = std::min(lowest, c);
  const Volt min_delta = std::min(vdd_floor - lowest, 0.0);
  v.stage_vdd_delta.resize(num_stages);
  for (std::size_t s = 0; s < num_stages; ++s) {
    v.stage_vdd_delta[s] = std::max(rng.gaussian(0.0, sigma_volts), min_delta);
  }

  v.sink_cap_scale.resize(num_sinks);
  for (std::size_t s = 0; s < num_sinks; ++s) {
    v.sink_cap_scale[s] = scale_deviate(rng, model.sigma_sink_cap);
  }
  return v;
}

}  // namespace contango

#pragma once

#include <cstdint>
#include <vector>

#include "netlist/library.h"
#include "util/units.h"

namespace contango {

/// \file variation.h
/// \brief Variation model of the Monte-Carlo engine (analysis/montecarlo.h).
///
/// The ISPD'09/'10 clock-network contests judged entries by Monte-Carlo
/// simulation under supply-voltage variation: worst skew and CLR over many
/// randomized trials.  This model reproduces that evaluation axis and adds
/// two process knobs on top:
///
///  * **per-stage supply deviates** — every buffer stage (and the clock
///    source) sees `corner_vdd + N(0, sigma_vdd * vdd_nom)`, modelling IR
///    drop and local supply noise;
///  * **global wire R/C scaling** — one `1 + N(0, sigma)` factor per trial
///    for wire resistance and one for wire capacitance, modelling
///    metal-thickness / dielectric process shift (pin caps are untouched);
///  * **per-sink load jitter** — each sink's pin cap is scaled by its own
///    `1 + N(0, sigma_sink_cap)` deviate.
///
/// All deviates come from deterministic per-trial substreams of the
/// bit-portable util/rng.h: trial i's draws depend only on (seed, i), never
/// on which worker thread runs the trial or in what order, which is what
/// makes Monte-Carlo results bit-identical for any thread count.

/// Variation magnitudes.  All sigmas are relative (fractions); 0 disables
/// that source.  A default-constructed model is the zero model: every trial
/// reproduces the nominal corners exactly.
struct VariationModel {
  double sigma_vdd = 0.0;       ///< per-stage Vdd sigma as a fraction of vdd_nom
  double sigma_wire_r = 0.0;    ///< global wire-resistance scale sigma
  double sigma_wire_c = 0.0;    ///< global wire-capacitance scale sigma
  double sigma_sink_cap = 0.0;  ///< per-sink pin-cap jitter sigma
  std::uint64_t seed = 1;       ///< substream root; same seed => same trials

  /// True when every sigma is zero (trials degenerate to the nominal corner).
  bool is_zero() const {
    return sigma_vdd == 0.0 && sigma_wire_r == 0.0 && sigma_wire_c == 0.0 &&
           sigma_sink_cap == 0.0;
  }
};

/// One sampled trial: the concrete perturbation applied to the staged
/// netlist before Clock-Network Evaluation.
struct TrialVariation {
  std::vector<Volt> stage_vdd_delta;  ///< per-stage supply offset, volts
  double wire_r_scale = 1.0;
  double wire_c_scale = 1.0;
  std::vector<double> sink_cap_scale;  ///< per-sink pin-cap factor
};

/// \brief Samples trial `trial` of the model from its own RNG substream.
///
/// The substream is seeded by an avalanche mix of (model.seed, trial), so
/// draws of different trials are decorrelated and each trial's perturbation
/// is a pure function of (model, trial, num_stages, num_sinks) — fully
/// independent of thread count and evaluation order.  Scale factors are
/// floored at 0.05 and per-stage supplies at 25% of vdd_nom so extreme
/// deviates can never produce a non-physical (zero/negative) network.
TrialVariation sample_trial(const VariationModel& model, const Technology& tech,
                            int trial, std::size_t num_stages,
                            std::size_t num_sinks);

}  // namespace contango

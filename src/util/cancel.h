#pragma once

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>

namespace contango {

/// \file cancel.h
/// \brief Cooperative cancellation for long-running flows.
///
/// A CancelToken is a cheap, copyable handle on a shared flag.  Producers
/// (the service daemon's cancel endpoint, the SIGINT/SIGTERM handler of the
/// bench binaries — util/signal.h) call request_cancel(); consumers (the
/// pass pipeline, the suite runner) poll cancelled() at safe boundaries —
/// between passes and between benchmarks — so an in-flight job stops with
/// every invariant intact and every report flushable, never mid-write.
///
/// A default-constructed token is *inert*: it can never be cancelled and
/// costs one null-pointer check to poll, so the flow code threads tokens
/// unconditionally without a "was cancellation requested?" special case.

/// Thrown by flow code when its CancelToken fires at a checkpoint.  Derives
/// from std::runtime_error so generic error paths still catch it, while the
/// suite runner catches the exact type to mark runs `cancelled` rather than
/// failed.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("cancelled") {}
  explicit CancelledError(const std::string& what) : std::runtime_error(what) {}
};

class CancelToken {
 public:
  /// Inert token: cancelled() is always false, request_cancel() a no-op.
  CancelToken() = default;

  /// A live token (one shared flag; copies observe the same flag).
  static CancelToken make() {
    CancelToken token;
    token.flag_ = std::make_shared<std::atomic<bool>>(false);
    return token;
  }

  /// False for inert (default-constructed) tokens.
  bool valid() const { return flag_ != nullptr; }

  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

  /// Requests cancellation; sticky and idempotent.  Safe from any thread.
  void request_cancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  /// \throws CancelledError naming `where` when cancellation was requested
  void throw_if_cancelled(const std::string& where) const {
    if (cancelled()) throw CancelledError(where + ": cancelled");
  }

  /// The raw flag, for async-signal-safe use only (a signal handler may
  /// store to an std::atomic<bool> but must not touch shared_ptr control
  /// blocks).  Valid as long as any token copy is alive; nullptr for inert
  /// tokens.  See util/signal.h for the one intended caller.
  std::atomic<bool>* raw_flag() const { return flag_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace contango

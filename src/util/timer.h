#pragma once

#include <chrono>
#include <ctime>

namespace contango {

/// Wall-clock stopwatch for runtime columns in the experiment tables.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed wall time in seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU seconds consumed by the *calling thread* so far.  Unlike
/// std::clock() this stays meaningful when several flows run concurrently
/// on a worker pool (per-pass cost accounting in cts/pipeline.h); falls
/// back to process CPU time where no thread clock exists.
inline double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  std::timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

}  // namespace contango

#pragma once

#include <chrono>

namespace contango {

/// Wall-clock stopwatch for runtime columns in the experiment tables.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed wall time in seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace contango

#include "util/signal.h"

#include <csignal>
#include <cstdlib>

namespace contango {
namespace {

// The handler may only perform async-signal-safe operations: a relaxed
// store to a plain std::atomic and, on the second signal, _Exit.  The raw
// flag pointer stays valid forever because the process-wide token below is
// a leaked-on-exit static.
std::atomic<bool>* g_cancel_flag = nullptr;
std::atomic<int> g_signal{0};

extern "C" void contango_cancel_signal_handler(int sig) {
  int expected = 0;
  if (!g_signal.compare_exchange_strong(expected, sig)) {
    std::_Exit(128 + sig);  // second signal: force quit, conventional status
  }
  if (g_cancel_flag != nullptr) {
    g_cancel_flag->store(true, std::memory_order_relaxed);
  }
}

}  // namespace

CancelToken signal_cancel_token() {
  static CancelToken token = CancelToken::make();
  return token;
}

void install_signal_cancel() {
  g_cancel_flag = signal_cancel_token().raw_flag();
  struct sigaction action = {};
  action.sa_handler = contango_cancel_signal_handler;
  sigemptyset(&action.sa_mask);
  // SA_RESTART: interrupted reads/writes resume, so a ^C can never tear a
  // JSON report mid-write — the cancellation lands at the next token poll.
  action.sa_flags = SA_RESTART;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

int signal_received() { return g_signal.load(std::memory_order_relaxed); }

}  // namespace contango

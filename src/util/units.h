#pragma once

// Unit conventions used throughout Contango.
//
// All physical quantities are plain doubles in a consistent unit system
// chosen so that no conversion factors appear in delay formulas:
//
//   time         : picoseconds (ps)
//   capacitance  : femtofarads (fF)
//   resistance   : kilo-ohms   (kOhm)
//   distance     : micrometers (um)
//   voltage      : volts       (V)
//
// The key identity is  1 kOhm * 1 fF = 1e3 * 1e-15 s = 1 ps,
// so Elmore terms R*C come out directly in ps.

namespace contango {

using Ps = double;    ///< time in picoseconds
using Ff = double;    ///< capacitance in femtofarads
using KOhm = double;  ///< resistance in kilo-ohms
using Um = double;    ///< distance in micrometers
using Volt = double;  ///< voltage in volts

/// Converts a resistance given in plain ohms to the internal kOhm unit.
constexpr KOhm ohms(double r_ohm) { return r_ohm * 1e-3; }

/// ln(9): scale factor between an RC time constant and the 10%-90% slew
/// of a single-pole exponential response.
inline constexpr double kLn9 = 2.1972245773362196;

/// ln(2): scale factor between an RC time constant and the 50% crossing
/// of a single-pole exponential response.
inline constexpr double kLn2 = 0.6931471805599453;

}  // namespace contango

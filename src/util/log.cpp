#include "util/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace contango {
namespace {

std::atomic<LogLevel> g_level = [] {
  if (const char* env = std::getenv("CONTANGO_LOG")) {
    if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
    if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
    if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
    if (std::strcmp(env, "error") == 0) return LogLevel::kError;
    if (std::strcmp(env, "silent") == 0) return LogLevel::kSilent;
  }
  return LogLevel::kWarn;
}();

void vlog(LogLevel level, const char* tag, const char* fmt, va_list args) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  // One message, one stdio call: stdio locks per call, so messages from
  // concurrent suite-runner workers never interleave mid-line.
  char buffer[1024];
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  std::fprintf(stderr, "[%s] %s\n", tag, buffer);
}

}  // namespace

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }
void Log::set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void Log::debug(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vlog(LogLevel::kDebug, "debug", fmt, args);
  va_end(args);
}

void Log::info(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vlog(LogLevel::kInfo, "info", fmt, args);
  va_end(args);
}

void Log::warn(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vlog(LogLevel::kWarn, "warn", fmt, args);
  va_end(args);
}

void Log::error(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  vlog(LogLevel::kError, "error", fmt, args);
  va_end(args);
}

}  // namespace contango

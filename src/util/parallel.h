#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace contango {

/// \file parallel.h
/// \brief Minimal threading primitives for the experiment harness: a
/// fixed-size ThreadPool for heterogeneous job sets and parallel_for() for
/// index-space fan-out.  Both degrade to inline serial execution at one
/// thread, which keeps single-threaded runs byte-for-byte reproducible.

/// \brief Worker count to use when a caller passes 0 ("pick for me").
/// \return std::thread::hardware_concurrency(), or 1 when that is unknown
inline int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

/// \brief Fixed-size thread pool for fanning independent jobs (whole
/// Contango runs, baseline flows, batch evaluations) across cores.
///
/// Submitted tasks must be independent: the pool gives no ordering
/// guarantee between them, so any shared state they touch must be their
/// own output slot or atomic.
///
/// With num_threads <= 1 the pool spawns no workers and submit() runs the
/// task inline, which keeps single-threaded runs byte-for-byte reproducible
/// and easy to debug/profile.  Callers that need submit() to be
/// asynchronous even at one worker — the service JobScheduler must return
/// to its client while the job runs, and cancel from another thread — pass
/// inline_single = false to force a real worker thread.
class ThreadPool {
 public:
  /// \param num_threads worker count; 0 picks hardware_threads(), <= 1
  ///        selects inline mode (no worker threads at all)
  /// \param inline_single when false, a single-threaded pool still spawns
  ///        its one worker so submit() never runs tasks on the caller
  explicit ThreadPool(int num_threads = 0, bool inline_single = true) {
    if (num_threads <= 0) num_threads = hardware_threads();
    if (num_threads <= 1 && inline_single) return;  // inline mode
    workers_.reserve(static_cast<std::size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    wait();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    task_ready_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (1 means inline execution, no workers).
  int num_threads() const {
    return workers_.empty() ? 1 : static_cast<int>(workers_.size());
  }

  /// \brief Enqueues one task.
  ///
  /// In inline mode the task runs before submit() returns.  Tasks must not
  /// throw — wrap the body and record failures in the task's own output
  /// slot (see run_suite() for the pattern).
  /// \param task the job to run on some worker, at some later time
  void submit(std::function<void()> task) {
    if (workers_.empty()) {
      task();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push(std::move(task));
      ++unfinished_;
    }
    task_ready_.notify_one();
  }

  /// Blocks until every task submitted so far has finished.  The pool stays
  /// usable afterwards (wait() is a barrier, not shutdown).
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return unfinished_ == 0; });
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // only true when stopping
        task = std::move(queue_.front());
        queue_.pop();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--unfinished_ == 0) all_done_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  int unfinished_ = 0;
  bool stopping_ = false;
};

/// \brief Runs fn(i) for i in [0, n) on up to num_threads workers.
///
/// fn is invoked exactly once per index; indices are handed out dynamically
/// so uneven job sizes still balance.  Blocks until all iterations finish.
/// \param n iteration count
/// \param num_threads worker cap; 0 = hardware concurrency, 1 = serial
/// \param fn callable taking the index; must not throw — wrap the body and
///        record errors in the output slot instead (see run_suite() for the
///        pattern)
template <typename Fn>
void parallel_for(int n, int num_threads, Fn&& fn) {
  if (n <= 0) return;
  if (num_threads <= 0) num_threads = hardware_threads();
  if (num_threads == 1 || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  auto drain = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  const int spawned = std::min(num_threads, n) - 1;  // caller thread drains too
  threads.reserve(static_cast<std::size_t>(spawned));
  for (int t = 0; t < spawned; ++t) threads.emplace_back(drain);
  drain();
  for (std::thread& t : threads) t.join();
}

}  // namespace contango

#pragma once

#include "util/cancel.h"

namespace contango {

/// \file signal.h
/// \brief SIGINT/SIGTERM -> CancelToken bridging for long-running binaries.
///
/// The default signal disposition kills a bench or daemon process mid-write,
/// truncating JSON reports and leaving stale socket files.  These helpers
/// turn the first SIGINT/SIGTERM into a cooperative cancellation instead:
/// the process-wide token fires, the suite/pipeline loops stop at their next
/// safe boundary, reports are flushed, and the binary exits cleanly.  A
/// *second* signal force-exits with the conventional 128+signum status, so
/// an unresponsive run can still be killed from the keyboard.
///
/// Usage (see bench_table4_contest / contangod):
///
///     install_signal_cancel();
///     options.flow.cancel = signal_cancel_token();
///     SuiteReport report = run_suite(suite, options);   // stops early on ^C
///     if (signal_cancel_token().cancelled()) { ...flushed partial report... }

/// The process-wide cancellation token signals fire.  Valid from the first
/// call; the same token is returned forever after.
CancelToken signal_cancel_token();

/// \brief Installs SIGINT and SIGTERM handlers that request_cancel() the
/// process-wide token.  Idempotent; thread-safe only before threads spawn
/// (call it at the top of main).  Handlers use SA_RESTART so interrupted
/// slow syscalls resume and in-progress writes are never torn.
void install_signal_cancel();

/// The number of the first cancellation signal received, or 0.  The
/// conventional exit status for a run ended by a signal is 128 + this.
int signal_received();

}  // namespace contango

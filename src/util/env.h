#pragma once

#include <string>

namespace contango {

/// Reads an integer environment variable, returning fallback when the
/// variable is unset or unparsable.  Benchmark drivers use these to scale
/// experiments (e.g. CONTANGO_MAX_SINKS for the Table V sweep).
long env_long(const char* name, long fallback);

/// Reads a floating-point environment variable with a fallback.
double env_double(const char* name, double fallback);

/// \brief Strict variant of env_long: unset (or empty) still yields the
/// fallback, but a *set yet malformed* value throws instead of being
/// silently coerced — `CONTANGO_THREADS=abc` is a configuration mistake the
/// harness must surface, not paper over.
/// \throws std::runtime_error naming the variable and its offending value
long env_long_strict(const char* name, long fallback);

/// Strict variant of env_double; see env_long_strict.
/// \throws std::runtime_error naming the variable and its offending value
double env_double_strict(const char* name, double fallback);

/// Reads a string environment variable with a fallback.
std::string env_string(const char* name, const std::string& fallback);

/// True when the variable is set to a truthy value (anything but "", "0",
/// "false", "off", "no").
bool env_flag(const char* name);

}  // namespace contango

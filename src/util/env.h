#pragma once

#include <string>

namespace contango {

/// Reads an integer environment variable, returning fallback when the
/// variable is unset or unparsable.  Benchmark drivers use these to scale
/// experiments (e.g. CONTANGO_MAX_SINKS for the Table V sweep).
long env_long(const char* name, long fallback);

/// Reads a floating-point environment variable with a fallback.
double env_double(const char* name, double fallback);

/// Reads a string environment variable with a fallback.
std::string env_string(const char* name, const std::string& fallback);

/// True when the variable is set to a truthy value (anything but "", "0",
/// "false", "off", "no").
bool env_flag(const char* name);

}  // namespace contango

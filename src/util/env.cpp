#include "util/env.h"

#include <cstdlib>
#include <cstring>

namespace contango {

long env_long(const char* name, long fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return (value != nullptr && *value != '\0') ? std::string(value) : fallback;
}

bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return false;
  return std::strcmp(value, "") != 0 && std::strcmp(value, "0") != 0 &&
         std::strcmp(value, "false") != 0 && std::strcmp(value, "off") != 0 &&
         std::strcmp(value, "no") != 0;
}

}  // namespace contango

#include "util/env.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace contango {

long env_long(const char* name, long fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

long env_long_strict(const char* name, long fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || end == nullptr || *end != '\0') {
    throw std::runtime_error(std::string(name) + "='" + value +
                             "' is not a valid integer");
  }
  if (errno == ERANGE) {
    throw std::runtime_error(std::string(name) + "='" + value +
                             "' is out of range");
  }
  return parsed;
}

double env_double_strict(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value, &end);
  if (end == value || end == nullptr || *end != '\0') {
    throw std::runtime_error(std::string(name) + "='" + value +
                             "' is not a valid number");
  }
  if (errno == ERANGE) {
    throw std::runtime_error(std::string(name) + "='" + value +
                             "' is out of range");
  }
  return parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return (value != nullptr && *value != '\0') ? std::string(value) : fallback;
}

bool env_flag(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return false;
  return std::strcmp(value, "") != 0 && std::strcmp(value, "0") != 0 &&
         std::strcmp(value, "false") != 0 && std::strcmp(value, "off") != 0 &&
         std::strcmp(value, "no") != 0;
}

}  // namespace contango

#pragma once

#include <cstdio>
#include <string>

namespace contango {

/// Severity levels for the global logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kSilent = 4 };

/// Minimal global logger.  Contango is a library first; all logging goes to
/// stderr and is filtered by a process-wide level so that benchmark drivers
/// can silence the flow.  Thread-safe: the level is atomic and each message
/// is emitted with a single stdio call, so lines from concurrent
/// suite-runner workers never interleave mid-line.
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);

  /// printf-style logging; the message is prefixed with the severity tag.
  static void debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
  static void info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
  static void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
  static void error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
};

}  // namespace contango

#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace contango {

/// \file hash.h
/// \brief Stable, byte-portable content hashing (FNV-1a, 64- and 128-bit).
///
/// The service layer keys its result cache by a content hash of
/// (benchmark bytes, pipeline spec, resolved options), and suite reports
/// carry a per-run `benchmark_hash` so downstream tooling can correlate
/// reports of the same workload across machines and releases.  That makes
/// two properties non-negotiable:
///
///  * **stability** — the digest of a byte sequence is fixed forever; it
///    never depends on platform, endianness, word size or stdlib (multi-byte
///    values are fed through explicit little-endian canonicalization, and
///    doubles through their IEEE-754 bit pattern);
///  * **determinism** — streaming a document in any chunking produces the
///    digest of the concatenation (update() is chunk-invariant).
///
/// FNV-1a is not cryptographic; keys here only dedupe trusted local
/// submissions, where accidental collision resistance of 128 bits is ample.

/// A 128-bit digest, comparable and hex-printable.
struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Hash128& a, const Hash128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Hash128& a, const Hash128& b) { return !(a == b); }
  friend bool operator<(const Hash128& a, const Hash128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  /// 32 lowercase hex digits, most significant first (the `benchmark_hash`
  /// wire format).
  std::string hex() const {
    static const char* digits = "0123456789abcdef";
    std::string out(32, '0');
    std::uint64_t words[2] = {hi, lo};
    for (int w = 0; w < 2; ++w) {
      for (int i = 0; i < 16; ++i) {
        out[static_cast<std::size_t>(w * 16 + 15 - i)] =
            digits[(words[w] >> (4 * i)) & 0xF];
      }
    }
    return out;
  }
};

/// FNV-1a 64-bit offset basis (the seed of an empty hash).
inline constexpr std::uint64_t kFnv64Offset = 0xcbf29ce484222325ULL;

/// \brief One-shot/streaming FNV-1a 64-bit over a byte range.
///
/// Pass a previous result as `state` to continue a stream; the digest is
/// chunk-invariant (hashing "ab" equals hashing "a" then "b").
inline std::uint64_t fnv1a64(const void* data, std::size_t size,
                             std::uint64_t state = kFnv64Offset) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state ^= bytes[i];
    state *= 0x100000001b3ULL;
  }
  return state;
}

inline std::uint64_t fnv1a64(const std::string& s,
                             std::uint64_t state = kFnv64Offset) {
  return fnv1a64(s.data(), s.size(), state);
}

/// \brief Streaming FNV-1a 128-bit hasher.
///
/// update() is chunk-invariant; the *_field variants prepend a
/// little-endian u64 length so adjacent variable-length fields cannot
/// collide by re-chunking ("ab","c" vs "a","bc").  Scalar feeds are
/// canonicalized: integers little-endian, doubles by IEEE-754 bit pattern —
/// the digest of a record is identical on every platform.
class Hasher {
 public:
  Hasher& update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    unsigned __int128 h = state_;
    for (std::size_t i = 0; i < size; ++i) {
      h ^= bytes[i];
      h *= kPrime;
    }
    state_ = h;
    return *this;
  }

  Hasher& update(const std::string& s) { return update(s.data(), s.size()); }

  /// Feeds `v` as 8 little-endian bytes regardless of host endianness.
  Hasher& update_u64(std::uint64_t v) {
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xFF);
    }
    return update(bytes, sizeof(bytes));
  }

  /// Feeds the IEEE-754 bit pattern of `v` (little-endian).  Note -0.0 and
  /// +0.0 hash differently, as do distinct NaN payloads — the hash tracks
  /// bits, not numeric equality, matching the library's bit-identical
  /// reproducibility contract.
  Hasher& update_double(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return update_u64(bits);
  }

  /// Length-prefixed byte field: update_u64(size) then the bytes.
  Hasher& update_field(const std::string& s) {
    update_u64(s.size());
    return update(s);
  }

  /// Digest of everything fed so far (the hasher stays usable).
  Hash128 digest() const {
    Hash128 out;
    out.hi = static_cast<std::uint64_t>(state_ >> 64);
    out.lo = static_cast<std::uint64_t>(state_);
    return out;
  }

 private:
  // FNV-1a-128 prime 2^88 + 2^8 + 0x3b and offset basis, per the FNV spec.
  static constexpr unsigned __int128 kPrime =
      (static_cast<unsigned __int128>(0x0000000001000000ULL) << 64) |
      0x000000000000013bULL;
  static constexpr unsigned __int128 kOffset =
      (static_cast<unsigned __int128>(0x6c62272e07bb0142ULL) << 64) |
      0x62b821756295c58dULL;

  unsigned __int128 state_ = kOffset;
};

/// One-shot FNV-1a 128-bit of a byte string.
inline Hash128 fnv1a128(const std::string& s) {
  return Hasher().update(s).digest();
}

}  // namespace contango

#pragma once

#include <cstdint>
#include <random>

namespace contango {

/// \file rng.h
/// Deterministic random number generator used by the benchmark generators,
/// the scenario registry and the property tests.
///
/// The engine is std::mt19937_64, whose raw 64-bit output sequence is fixed
/// by the C++ standard.  The *distributions*, however, are deliberately NOT
/// the std:: ones: std::uniform_real_distribution, std::normal_distribution
/// and friends are implementation-defined, so the same seed produces
/// different deviates under libstdc++, libc++ and MSVC.  Every deviate here
/// is instead derived from raw engine words using only IEEE-exact
/// arithmetic (shifts, adds, multiplies — no libm), which makes generated
/// benchmarks bit-identical across platforms, compilers and standard
/// libraries.  CI relies on this: the checked-in benchmarks/ instances are
/// diffed against a fresh export on every run.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Next raw engine word (portable by the standard).
  std::uint64_t next64() { return engine_(); }

  /// Uniform double in [0, 1) with 53 random bits.
  double unit() { return static_cast<double>(next64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + unit() * (hi - lo); }

  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection
  /// sampling on the raw engine output.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t range =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1u;
    if (range == 0) {  // full 64-bit span: every word is already uniform
      return static_cast<std::int64_t>(next64());
    }
    // Reject the low `2^64 mod range` words; the remaining span is an exact
    // multiple of `range`, so the modulo below is unbiased.
    const std::uint64_t threshold = (0u - range) % range;
    for (;;) {
      const std::uint64_t word = next64();
      if (word >= threshold) {
        return lo + static_cast<std::int64_t>((word - threshold) % range);
      }
    }
  }

  /// Approximate normal deviate: sum of 12 unit uniforms minus 6
  /// (Irwin-Hall / central-limit construction, variance exactly 1).  Chosen
  /// over Box-Muller because it needs no libm calls, whose last-ulp rounding
  /// varies across libc versions and would break cross-platform
  /// bit-reproducibility.  Tails truncate at +-6 sigma, which is irrelevant
  /// for geometry scatter.  Always consumes exactly 12 engine words.
  double gaussian(double mean, double stddev) {
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) sum += unit();
    return mean + stddev * (sum - 6.0);
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return unit() < p; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace contango

// Obstacle-avoidance walkthrough (paper section IV-A, Fig. 2): builds a
// hand-crafted scene per repair mechanism — L-shape flipping, maze
// rerouting, single-buffer crossings, and the contour detour — runs the
// repair pass on each, and reports what happened.

#include <cstdio>

#include "cts/obstacles.h"
#include "io/svg.h"
#include "netlist/generators.h"

using namespace contango;

namespace {

Benchmark scene(std::vector<Point> sinks, std::vector<Rect> rects) {
  Benchmark b;
  b.name = "scene";
  b.die = Rect{0, 0, 6000, 6000};
  b.source = Point{3000, 0};
  b.tech = ispd09_technology();
  b.tech.cap_limit = 1e9;
  int i = 0;
  for (const Point& p : sinks) b.sinks.push_back(Sink{"s" + std::to_string(i++), p, 10.0});
  b.obstacle_rects = std::move(rects);
  return b;
}

void report(const char* title, const ObstacleRepairReport& r, const ClockTree& tree,
            const Benchmark& bench) {
  bool legal = true;
  const ObstacleSet& obs = bench.obstacles();
  for (NodeId id : tree.topological_order()) {
    if (id == tree.root()) continue;
    const TreeNode& n = tree.node(id);
    for (std::size_t i = 1; i < n.route.size(); ++i) {
      if (obs.blocks_segment(HVSegment{n.route[i - 1], n.route[i]}) &&
          tree.subtree_cap(id, bench.tech, {10.0, 10.0, 10.0, 10.0}) > 200.0) {
        legal = false;
      }
    }
  }
  std::printf("%-28s l-flips %d  maze %d  detours %d  kept %d  (+%.0f um)  %s\n",
              title, r.l_flips, r.maze_reroutes, r.contour_detours,
              r.kept_crossings, r.added_wirelength, legal ? "ok" : "VIOLATION");
}

}  // namespace

int main() {
  std::printf("== obstacle-avoidance mechanisms (paper section IV-A) ==\n\n");

  {  // 1. L-shape flip: the alternative elbow dodges the block.
    Benchmark b = scene({{4800, 2800}}, {Rect{3600, 300, 4400, 2200}});
    ClockTree t;
    const NodeId root = t.add_source(b.source);
    const NodeId s = t.add_child(root, NodeKind::kSink, {4800, 2800},
                                 {{3000, 0}, {4800, 0}, {4800, 2800}});
    t.node(s).sink_index = 0;
    // The HV route at x=4800 is legal; build the VH one that crosses.
    t.reroute_edge(s, {{3000, 0}, {3000, 1000}, {4000, 1000}, {4000, 2800}, {4800, 2800}});
    auto r = repair_obstacles(t, b);
    report("1. L-shape flip", r, t, b);
  }
  {  // 2. Maze reroute around a tall wall.
    Benchmark b = scene({{3000, 4000}}, {Rect{2000, 1000, 4000, 3000}});
    ClockTree t;
    const NodeId root = t.add_source(b.source);
    const NodeId s = t.add_child(root, NodeKind::kSink, {3000, 4000},
                                 {{3000, 0}, {3000, 4000}});
    t.node(s).sink_index = 0;
    ObstacleRepairOptions o;
    o.slew_free_cap = 100.0;  // too much wire beyond the block for one buffer
    auto r = repair_obstacles(t, b, o);
    report("2. maze reroute", r, t, b);
  }
  {  // 3. Light crossing kept: one buffer drives over the thin macro.
    Benchmark b = scene({{3000, 2000}}, {Rect{2800, 1000, 3200, 1300}});
    ClockTree t;
    const NodeId root = t.add_source(b.source);
    const NodeId s = t.add_child(root, NodeKind::kSink, {3000, 2000},
                                 {{3000, 0}, {3000, 2000}});
    t.node(s).sink_index = 0;
    ObstacleRepairOptions o;
    o.slew_free_cap = 2000.0;  // strong driver: the thin crossing is fine
    auto r = repair_obstacles(t, b, o);
    report("3. kept crossing", r, t, b);
  }
  {  // 4. Contour detour of an enclosed subtree (Fig. 2).
    Benchmark b = scene({{1000, 4500}, {5000, 4500}, {5200, 2000}},
                        {Rect{2000, 1500, 4000, 4000}, Rect{4000, 1500, 5000, 2600}});
    ClockTree t;
    const NodeId root = t.add_source(b.source);
    const NodeId hub = t.add_child(root, NodeKind::kInternal, {3000, 2500},
                                   {{3000, 0}, {3000, 2500}});
    const NodeId inner = t.add_child(hub, NodeKind::kInternal, {3500, 3000});
    const NodeId s0 = t.add_child(inner, NodeKind::kSink, {1000, 4500});
    t.node(s0).sink_index = 0;
    const NodeId s1 = t.add_child(inner, NodeKind::kSink, {5000, 4500});
    t.node(s1).sink_index = 1;
    const NodeId s2 = t.add_child(hub, NodeKind::kSink, {5200, 2000});
    t.node(s2).sink_index = 2;
    ObstacleRepairOptions o;
    o.slew_free_cap = 50.0;
    auto r = repair_obstacles(t, b, o);
    report("4. contour detour", r, t, b);
    SvgOptions svg;
    svg.color_by_slack = false;
    write_svg_file("detour_demo.svg", b, t, {}, svg);
    std::printf("\n   scene 4 written to detour_demo.svg\n");
  }
  return 0;
}

// Open-ended workload engine demo: resolve a workload spec — registered
// scenario families, .bench files on disk, or whole directories of them —
// and fan the full Contango flow out over the result, printing the
// per-scenario report table.
//
//   ./example_scenario_suite [spec] [threads] [seed]
//
// Defaults: spec = the checked-in benchmarks/ directory (tried relative to
// the current directory, then the parent, as when running from build/);
// threads = hardware concurrency; seed = 1.
//
//   ./example_scenario_suite benchmarks/ring_s1.bench     # one file
//   ./example_scenario_suite ring,high_fanout:600 8 7     # registry, 8 threads

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "cts/pipeline.h"
#include "cts/scenario.h"
#include "cts/suite.h"

using namespace contango;

int main(int argc, char** argv) {
  std::string spec;
  if (argc > 1) {
    spec = argv[1];
  } else {
    // Find the checked-in benchmark directory from repo root or build/.
    spec = std::filesystem::is_directory("benchmarks") ? "benchmarks"
                                                       : "../benchmarks";
  }
  const int threads = (argc > 2) ? std::atoi(argv[2]) : 0;
  const auto seed = static_cast<std::uint64_t>((argc > 3) ? std::atoll(argv[3]) : 1);

  std::vector<Benchmark> suite;
  try {
    suite = collect_workloads(spec, seed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot resolve workload spec '%s':\n  %s\n",
                 spec.c_str(), e.what());
    return 1;
  }
  if (suite.empty()) {
    std::fprintf(stderr, "workload spec '%s' resolved to no benchmarks\n",
                 spec.c_str());
    return 1;
  }

  SuiteOptions options;
  try {
    options = suite_options_from_env();  // CONTANGO_PIPELINE, _JSON_OUT, ...
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (argc > 2) options.threads = threads;  // argv beats CONTANGO_THREADS
  if (!options.pipeline_spec.empty()) {
    options.flow.pipeline = options.pipeline_spec;
  }
  std::printf("pipeline: %s\n",
              resolved_pipeline_spec(options.flow).c_str());
  std::printf("workloads from '%s' (seed %llu):\n", spec.c_str(),
              static_cast<unsigned long long>(seed));
  for (const Benchmark& b : suite) {
    std::printf("  %-22s %4zu sinks, %3zu obstacles, die %.1f x %.1f mm\n",
                b.name.c_str(), b.sinks.size(), b.obstacle_rects.size(),
                b.die.width() / 1000.0, b.die.height() / 1000.0);
  }
  std::printf("\n");

  options.on_run_done = [](const SuiteRun& run) {
    std::printf("  done %-22s %6.1f s%s\n", run.benchmark.c_str(), run.seconds,
                run.ok ? "" : " (FAILED)");
    std::fflush(stdout);
  };
  const SuiteReport report = run_suite(suite, options);

  std::printf("\n%s\n", report.table().c_str());
  std::printf("%d threads: %.1f s wall, %.1f s process CPU, %ld sims total\n",
              report.threads, report.wall_seconds, report.process_cpu_seconds,
              report.total_sim_runs());
  return report.all_ok() ? 0 : 1;
}

// Pass-pipeline ablation demo: run the default Contango pipeline on one
// scenario, show where the wall time and simulation budget went per pass,
// then re-run with each optimization pass removed (the paper's Table III
// ablation axis) and with a parameter override, all through the textual
// pipeline-spec API (cts/pipeline.h).
//
//   ./example_ablation_study [family] [seed]
//
// Defaults: family = ring, seed = 1.  Honors CONTANGO_PIPELINE as the base
// spec.

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "cts/pipeline.h"
#include "cts/scenario.h"
#include "io/table.h"
#include "util/env.h"

using namespace contango;

int main(int argc, char** argv) {
  const std::string family = (argc > 1) ? argv[1] : "ring";
  const auto seed = static_cast<std::uint64_t>((argc > 2) ? std::atoll(argv[2]) : 1);

  FlowOptions options;
  options.pipeline = env_string("CONTANGO_PIPELINE", "");
  const std::string base_spec = resolved_pipeline_spec(options);

  Benchmark bench;
  try {
    bench = make_scenario(family, seed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "unknown scenario '%s':\n  %s\n", family.c_str(), e.what());
    return 1;
  }
  std::printf("scenario: %s (%zu sinks)\npipeline: %s\n\n", bench.name.c_str(),
              bench.sinks.size(), base_spec.c_str());

  // ---- Full pipeline, with per-pass cost accounting. ----
  FlowResult full;
  try {
    full = Pipeline::from_spec(base_spec).run(bench, options);
  } catch (const PipelineError& e) {
    std::fprintf(stderr, "bad pipeline spec: %s\n", e.what());
    return 1;
  }
  TextTable passes({"Pass", "Wall, s", "CPU, s", "Sims"});
  for (const PassTiming& p : full.pass_timings) {
    passes.add_row({p.name, TextTable::num(p.wall_seconds, 2),
                    TextTable::num(p.cpu_seconds, 2),
                    std::to_string(p.sim_runs)});
  }
  std::printf("-- per-pass cost of the full flow --\n%s\n",
              passes.to_string().c_str());

  TextTable stages({"Stage", "Skew, ps", "CLR, ps", "Cap, pF", "Sims"});
  for (const StageSnapshot& s : full.stages) {
    stages.add_row({s.name, TextTable::num(s.skew, 3), TextTable::num(s.clr, 2),
                    TextTable::num(s.cap / 1000.0, 2),
                    std::to_string(s.sim_runs)});
  }
  std::printf("-- stage snapshots (Table III row) --\n%s\n",
              stages.to_string().c_str());

  // ---- Single-pass-removed variants (Table III ablation axis). ----
  TextTable ablation({"Pipeline", "Skew, ps", "CLR, ps", "Sims"});
  ablation.add_row({base_spec, TextTable::num(full.eval.nominal_skew, 3),
                    TextTable::num(full.eval.clr, 2),
                    std::to_string(full.sim_runs)});
  for (const std::string removed : {"tbsz", "twsz", "twsn", "bwsn"}) {
    if (!pipeline_spec_contains(base_spec, removed)) continue;
    const std::string spec = pipeline_spec_without(base_spec, removed);
    const FlowResult r = Pipeline::from_spec(spec).run(bench, options);
    ablation.add_row({spec, TextTable::num(r.eval.nominal_skew, 3),
                      TextTable::num(r.eval.clr, 2), std::to_string(r.sim_runs)});
    std::fflush(stdout);
  }
  std::printf("-- single-pass-removed pipelines --\n%s\n",
              ablation.to_string().c_str());

  // ---- Parameter override through the spec. ----
  FlowOptions coarse = options;
  coarse.pipeline = "dme,repair,insert,polarity,tbsz,twsz,twsn:unit=40,bwsn";
  const FlowResult r = run_contango(bench, coarse);
  std::printf("override demo: %s\n  -> skew %.3f ps (vs %.3f ps at the "
              "default snake unit)\n",
              coarse.pipeline.c_str(), r.eval.nominal_skew,
              full.eval.nominal_skew);
  return 0;
}

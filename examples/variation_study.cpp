// Yield-curve study with the Monte-Carlo variation engine: synthesize one
// scenario, then sweep the supply-noise magnitude and watch the skew
// distribution fatten and the yield (fraction of trials meeting the skew
// target) fall off — the evaluation axis the ISPD contests judged by.
//
//   ./example_variation_study [family] [trials] [json_out]
//
// Defaults: family = ring, trials = 96.  When json_out is given, the full
// Monte-Carlo report of the last sweep point (per-trial samples included)
// is written there as JSON.
//
//   ./example_variation_study clustered 256 mc.json
//
// The study also demonstrates the engine's reproducibility contract: the
// final sweep point is recomputed on a different worker count and must be
// bit-identical.

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "analysis/montecarlo.h"
#include "cts/flow.h"
#include "cts/scenario.h"
#include "io/json.h"
#include "io/table.h"

using namespace contango;

int main(int argc, char** argv) {
  const std::string family = (argc > 1) ? argv[1] : "ring";
  const int trials = (argc > 2) ? std::atoi(argv[2]) : 96;
  const std::string json_out = (argc > 3) ? argv[3] : "";

  try {
    const Benchmark bench = make_scenario(family, /*seed=*/1);
    std::printf("synthesizing '%s' (%zu sinks)...\n", bench.name.c_str(),
                bench.sinks.size());
    const FlowResult flow = run_contango(bench);
    std::printf("nominal: skew %.3f ps, CLR %.2f ps, latency %.1f ps\n\n",
                flow.eval.nominal_skew, flow.eval.clr, flow.eval.max_latency);

    McOptions options;
    options.trials = trials;
    options.threads = 0;  // hardware concurrency; results identical at any count
    options.skew_target = 10.0;

    TextTable table({"sigma_vdd", "skew mean", "sigma", "p95", "p99", "max",
                     "CLR p99", "Yield%"});
    McReport last;
    for (const double sigma : {0.0, 0.02, 0.05, 0.08, 0.12}) {
      VariationModel model;
      model.sigma_vdd = sigma;
      model.sigma_wire_r = sigma / 2.0;
      model.sigma_wire_c = sigma / 2.0;
      model.seed = 1;
      last = run_montecarlo(bench, flow.tree, model, options);
      table.add_row({TextTable::num(sigma, 3),
                     TextTable::num(last.skew.mean, 3),
                     TextTable::num(last.skew.stddev, 3),
                     TextTable::num(last.skew.p95, 3),
                     TextTable::num(last.skew.p99, 3),
                     TextTable::num(last.skew.max, 3),
                     TextTable::num(last.clr.p99, 2),
                     TextTable::num(100.0 * last.yield, 1)});
    }
    std::printf("%d trials per point, skew target %.1f ps (skew/CLR in ps):\n%s\n",
                trials, options.skew_target, table.to_string().c_str());

    // Reproducibility check: same model, serial worker — must be identical.
    McOptions serial = options;
    serial.threads = 1;
    VariationModel model;
    model.sigma_vdd = 0.12;
    model.sigma_wire_r = 0.06;
    model.sigma_wire_c = 0.06;
    model.seed = 1;
    const McReport redo = run_montecarlo(bench, flow.tree, model, serial);
    const bool identical = redo.skew.mean == last.skew.mean &&
                           redo.skew.p99 == last.skew.p99 &&
                           redo.yield == last.yield;
    std::printf("serial re-run bit-identical to %d-thread run: %s\n",
                last.threads, identical ? "yes" : "NO (BUG)");

    if (!json_out.empty()) {
      write_text_file(json_out, last.to_json(/*with_samples=*/true) + "\n");
      std::printf("JSON report (with per-trial samples) written to %s\n",
                  json_out.c_str());
    }
    return identical ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "variation_study: %s\n", e.what());
    return 1;
  }
}

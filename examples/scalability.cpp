// TI-style scalability study (paper section V): sample the 135K-sink pool
// of a 4.2 x 3.0 mm chip down to a chosen sink count and run the full flow.
//
//   ./scalability [num_sinks] [seed]

#include <cstdio>
#include <cstdlib>

#include "cts/flow.h"
#include "netlist/generators.h"
#include "util/timer.h"

using namespace contango;

int main(int argc, char** argv) {
  const int num_sinks = (argc > 1) ? std::atoi(argv[1]) : 1000;
  const std::uint64_t seed = (argc > 2) ? std::strtoull(argv[2], nullptr, 10) : 77;

  const Benchmark bench = generate_ti_like(num_sinks, seed);
  std::printf("TI-style benchmark: %d sinks sampled from the 135K pool "
              "(seed %llu)\n\n", num_sinks, static_cast<unsigned long long>(seed));

  Timer timer;
  const FlowResult r = run_contango(bench);

  std::printf("%-8s %12s %12s %12s\n", "stage", "skew, ps", "CLR, ps", "sims");
  for (const StageSnapshot& s : r.stages) {
    std::printf("%-8s %12.3f %12.3f %12d\n", s.name.c_str(), s.skew, s.clr,
                s.sim_runs);
  }
  std::printf("\n# sinks      : %d\n", num_sinks);
  std::printf("CLR          : %.2f ps\n", r.eval.clr);
  std::printf("skew         : %.3f ps\n", r.eval.nominal_skew);
  std::printf("latency      : %.1f ps\n", r.eval.max_latency);
  std::printf("capacitance  : %.2f pF (%.1f%% of limit)\n", r.eval.total_cap / 1000.0,
              100.0 * r.eval.total_cap / bench.tech.cap_limit);
  std::printf("buffers      : %d\n", r.tree.buffer_count());
  std::printf("sim runs     : %d\n", r.sim_runs);
  std::printf("wall time    : %.1f s\n", timer.seconds());
  return r.eval.legal() ? 0 : 1;
}

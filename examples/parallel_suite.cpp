// Parallel suite runner: fan the full Contango flow out over a benchmark
// suite on a worker pool, then rerun it serially and check that the two
// reports agree bit for bit (the runner is deterministic by construction —
// every worker owns its evaluator and writes only its own result slot).
//
//   ./example_parallel_suite [num_benchmarks] [threads]
//
// Defaults: 4 smallest suite entries, hardware-concurrency workers.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cts/pipeline.h"
#include "cts/suite.h"
#include "netlist/generators.h"
#include "util/env.h"
#include "util/parallel.h"

using namespace contango;

int main(int argc, char** argv) {
  const int count = (argc > 1) ? std::atoi(argv[1]) : 4;
  const int threads = (argc > 2) ? std::atoi(argv[2]) : hardware_threads();

  // The suite: ISPD'09-style entries, smallest first so the demo stays fast.
  const std::vector<int> order = {3, 0, 1, 4, 2, 5, 6};
  std::vector<Benchmark> suite;
  for (int i = 0; i < count && i < 7; ++i) {
    suite.push_back(generate_ispd_like(ispd09_suite_params(order[static_cast<std::size_t>(i)])));
  }
  // 1. Parallel run.
  SuiteOptions options;
  options.threads = threads;
  options.flow.pipeline = env_string("CONTANGO_PIPELINE", "");
  try {
    Pipeline::from_options(options.flow);  // reject bad specs up front
  } catch (const PipelineError& e) {
    std::fprintf(stderr, "CONTANGO_PIPELINE: %s\n", e.what());
    return 1;
  }
  std::printf("suite: %zu benchmarks, %d worker threads\npipeline: %s\n\n",
              suite.size(), threads,
              resolved_pipeline_spec(options.flow).c_str());
  // Live progress through the runner's hooks: one line when a worker picks
  // a benchmark up, one when it finishes.  Both hooks are serialized by the
  // runner, so plain printf needs no locking here.
  options.on_run_start = [](const SuiteRun& run) {
    std::printf("  start %-8s (%d sinks, hash %.16s...)\n",
                run.benchmark.c_str(), run.num_sinks,
                run.benchmark_hash.c_str());
    std::fflush(stdout);
  };
  options.on_run_done = [](const SuiteRun& run) {
    std::printf("  done  %-8s %5.1f s%s\n", run.benchmark.c_str(), run.seconds,
                run.ok ? "" : " (FAILED)");
    std::fflush(stdout);
  };
  const SuiteReport parallel = run_suite(suite, options);
  options.on_run_start = nullptr;  // the serial rerun below stays quiet
  options.on_run_done = nullptr;
  std::printf("%s\n", parallel.table().c_str());
  std::printf("parallel: %.1f s wall, %.1f s CPU\n\n", parallel.wall_seconds,
              parallel.cpu_seconds());

  // 2. Serial rerun of the same suite; the wall-time ratio is the true
  // speedup (it saturates at the machine's core count).
  options.threads = 1;
  const SuiteReport serial = run_suite(suite, options);
  std::printf("serial:   %.1f s wall  ->  %.2fx speedup on %d threads\n",
              serial.wall_seconds, serial.wall_seconds / parallel.wall_seconds,
              threads);

  // 3. Determinism check: identical metrics in every row.
  int mismatches = 0;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const FlowResult& p = parallel.runs[i].result;
    const FlowResult& s = serial.runs[i].result;
    if (p.eval.clr != s.eval.clr || p.eval.nominal_skew != s.eval.nominal_skew ||
        p.eval.total_cap != s.eval.total_cap || p.sim_runs != s.sim_runs) {
      std::printf("MISMATCH on %s\n", parallel.runs[i].benchmark.c_str());
      ++mismatches;
    }
  }
  std::printf("determinism: %s\n",
              mismatches == 0 ? "parallel == serial on every benchmark"
                              : "FAILED");
  return mismatches == 0 && parallel.all_ok() ? 0 : 1;
}

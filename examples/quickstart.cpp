// Quickstart: build a zero-skew tree for a small synthetic chip, buffer it,
// and report skew/CLR from the transient evaluator.
//
//   ./quickstart [num_sinks]

#include <cstdio>
#include <cstdlib>

#include "analysis/evaluate.h"
#include "cts/buflib.h"
#include "cts/dme.h"
#include "cts/vanginneken.h"
#include "netlist/generators.h"

using namespace contango;

int main(int argc, char** argv) {
  const int num_sinks = (argc > 1) ? std::atoi(argv[1]) : 150;

  // 1. A benchmark: die, source, sinks, obstacles, technology.
  const Benchmark bench = generate_ti_like(num_sinks);
  std::printf("benchmark %s: %zu sinks, die %.0f x %.0f um, cap limit %.1f pF\n",
              bench.name.c_str(), bench.sinks.size(), bench.die.width(),
              bench.die.height(), bench.tech.cap_limit / 1000.0);

  // 2. Zero-skew tree via DME.
  ClockTree tree = build_zst(bench);
  std::printf("ZST: %zu nodes, wirelength %.1f mm\n", tree.size(),
              tree.total_wirelength() / 1000.0);

  // 3. Fast buffer insertion with the best composite unit (8x small).
  const CompositeBuffer unit = best_unit_composite(bench.tech);
  const auto ins = insert_buffers(tree, bench, unit);
  std::printf("buffer insertion: %d composite buffers (%dx %s each)\n",
              ins.buffers_inserted, unit.count,
              bench.tech.inverters[static_cast<std::size_t>(unit.inverter_type)].name.c_str());

  // 4. Evaluate with the transient engine at both supply corners.
  Evaluator eval(bench);
  const EvalResult r = eval.evaluate(tree);
  std::printf("nominal skew  : %8.3f ps\n", r.nominal_skew);
  std::printf("CLR           : %8.3f ps\n", r.clr);
  std::printf("max latency   : %8.3f ps\n", r.max_latency);
  std::printf("worst slew    : %8.3f ps (limit %.0f)\n", r.worst_slew,
              bench.tech.slew_limit);
  std::printf("total cap     : %8.1f pF (%.1f%% of limit)\n", r.total_cap / 1000.0,
              100.0 * r.total_cap / bench.tech.cap_limit);
  std::printf("legal         : %s\n", r.legal() ? "yes" : "NO");
  return r.legal() ? 0 : 1;
}

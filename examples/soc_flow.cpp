// Full SoC clock-network synthesis walkthrough on an obstacle-heavy
// benchmark: runs every Contango stage, prints the per-stage metrics, and
// dumps SVG snapshots (construction / final) so the detours, buffers and
// slack gradient can be inspected.
//
//   ./soc_flow [suite_index 0..6] [output_prefix]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cts/buflib.h"
#include "cts/dme.h"
#include "cts/flow.h"
#include "cts/obstacles.h"
#include "cts/slack.h"
#include "io/svg.h"
#include "netlist/generators.h"
#include "netlist/io.h"

using namespace contango;

int main(int argc, char** argv) {
  const int index = (argc > 1) ? std::atoi(argv[1]) : 2;
  const std::string prefix = (argc > 2) ? argv[2] : "soc";
  const Benchmark bench = generate_ispd_like(ispd09_suite_params(index));

  std::printf("benchmark %s: %zu sinks, %zu obstacle rects "
              "(%zu compound blockages), die %.1f x %.1f mm\n",
              bench.name.c_str(), bench.sinks.size(), bench.obstacle_rects.size(),
              bench.obstacles().compounds().size(), bench.die.width() / 1000.0,
              bench.die.height() / 1000.0);
  write_benchmark_file(bench, prefix + "_benchmark.cns");
  std::printf("benchmark written to %s_benchmark.cns\n\n", prefix.c_str());

  // Snapshot of the raw construction for comparison.
  {
    ClockTree zst = build_zst(bench);
    SvgOptions options;
    options.color_by_slack = false;
    write_svg_file(prefix + "_zst.svg", bench, zst, {}, options);
  }

  const FlowResult r = run_contango(bench);
  std::printf("%-8s %14s %14s %12s %8s\n", "stage", "skew, ps", "CLR, ps",
              "cap, pF", "sims");
  for (const StageSnapshot& s : r.stages) {
    std::printf("%-8s %14.3f %14.3f %12.2f %8d\n", s.name.c_str(), s.skew,
                s.clr, s.cap / 1000.0, s.sim_runs);
  }
  std::printf("\nobstacle repair: %d L-flips, %d maze reroutes, %d contour "
              "detours, %d kept crossings (+%.2f mm wire)\n",
              r.obstacles.l_flips, r.obstacles.maze_reroutes,
              r.obstacles.contour_detours, r.obstacles.kept_crossings,
              r.obstacles.added_wirelength / 1000.0);
  std::printf("polarity: %d inverted sinks fixed with %d inverters\n",
              r.polarity.inverted_sinks, r.polarity.added_inverters);
  std::printf("composite buffer: %dx %s; %d buffer nodes\n", r.buffer.count,
              bench.tech.inverters[static_cast<std::size_t>(r.buffer.inverter_type)].name.c_str(),
              r.tree.buffer_count());
  std::printf("final: skew %.3f ps, CLR %.3f ps, worst slew %.1f ps, legal %s\n",
              r.eval.nominal_skew, r.eval.clr, r.eval.worst_slew,
              r.eval.legal() ? "yes" : "NO");

  const EdgeSlacks slacks = compute_edge_slacks(r.tree, r.eval);
  std::vector<Ps> color(r.tree.size(), 0.0);
  for (NodeId id : r.tree.topological_order()) {
    if (id != r.tree.root() && slacks.slow[id] < 1e30) color[id] = slacks.slow[id];
  }
  write_svg_file(prefix + "_final.svg", bench, r.tree, color);
  std::printf("SVGs written to %s_zst.svg and %s_final.svg\n", prefix.c_str(),
              prefix.c_str());
  return r.eval.legal() ? 0 : 1;
}

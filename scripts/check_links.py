#!/usr/bin/env python3
"""Fails when a Markdown file contains a broken relative link.

Scans the files given on the command line (or README.md + docs/*.md when
called with no arguments) for inline links/images `[text](target)` and
reference definitions `[label]: target`, and checks that every relative
target exists on disk. External schemes (http/https/mailto) and pure
in-page anchors (#...) are skipped; `path#anchor` checks only the path.

Usage: scripts/check_links.py [file.md ...]
"""
import glob
import os
import re
import sys

# Inline [text](target) — target up to the first unescaped ')'; tolerates
# an optional "title" suffix. Reference defs are matched separately.
INLINE = re.compile(r"\[[^\]]*\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s*(\S+)", re.MULTILINE)
SKIP = ("http://", "https://", "mailto:", "ftp://")


def strip_code(markdown: str) -> str:
    """Drops fenced code blocks and inline code spans — links inside code
    are examples, not navigation."""
    markdown = re.sub(r"^```.*?^```", "", markdown, flags=re.DOTALL | re.MULTILINE)
    return re.sub(r"`[^`\n]*`", "", markdown)


def check(path: str) -> list:
    with open(path, encoding="utf-8") as fh:
        text = strip_code(fh.read())
    base = os.path.dirname(path)
    targets = [m.group(1) for m in INLINE.finditer(text)] + REFDEF.findall(text)
    broken = []
    for target in targets:
        if target.startswith(SKIP) or target.startswith("#"):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        if not os.path.exists(os.path.join(base, rel)):
            broken.append((path, target))
    return broken


def main(argv: list) -> int:
    files = argv or sorted({"README.md", *glob.glob("docs/*.md")})
    broken = []
    for path in files:
        broken.extend(check(path))
    for path, target in broken:
        print(f"BROKEN LINK in {path}: {target}")
    print(f"checked {len(files)} files, {len(broken)} broken links")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Record a perf-trajectory point from a bench run (Table IV/V/VI).

Runs the selected bench with ``CONTANGO_JSON_OUT`` and **appends** the
machine-readable suite report to a checked-in trajectory file (default
``BENCH_<bench>.json`` at the repo root).  Each PR that wants to claim a
perf delta adds a labelled point; history is kept, so release-over-release
diffs show both what got faster and why (wall seconds plus the
full/incremental and batched/scalar evaluation splits ride along in every
report).

Trajectory file format::

    {"type": "contango_bench_trajectory", "bench": "table5",
     "points": [{"label": ..., "config": {...}, "report": {...}}, ...]}

A pre-existing file in the old single-report format
(``{"type": "contango_suite_report", ...}``) is migrated in place as the
first point (label ``pre-trajectory``).  Re-running with an existing label
replaces that point instead of duplicating it.

Usage:
    python3 scripts/bench_snapshot.py [--bench table4|table5|table6]
                                      [--label pr6-batched]
                                      [--build-dir build] [--out FILE]
                                      [--max-sinks 2000] [--threads 1]
                                      [--scenario huge] [--seed 1]
                                      [--workloads mega_1m.cbench]
                                      [--force-full] [--force-scalar]
                                      [--force-scan] [--force-buffered]

``--workloads`` (table5 only) runs a collect_workloads() spec — scenario
families, ``.bench``/``.cbench`` files, directories — instead of a sweep;
per-run ``load_seconds`` land in the report, so a text-vs-binary pair of
points (e.g. ``pr9-text`` vs ``pr9-binary``) separates parse/load cost
from flow cost.

Exit status is non-zero when the bench fails or a report is malformed.
"""

import argparse
import json
import os
import pathlib
import subprocess
import sys

BENCH_BINARIES = {
    "table4": "bench_table4_contest",
    "table5": "bench_table5_scaling",
    "table6": "bench_table6_variation",
}


def load_trajectory(path: pathlib.Path, bench: str):
    """Read an existing trajectory (migrating the legacy format), or start one."""
    trajectory = {"type": "contango_bench_trajectory", "bench": bench, "points": []}
    if not path.exists():
        return trajectory
    with open(path) as f:
        existing = json.load(f)
    if existing.get("type") == "contango_bench_trajectory":
        if existing.get("bench") != bench:
            raise ValueError(
                f"{path} tracks bench {existing.get('bench')!r}, not {bench!r}")
        trajectory["points"] = existing.get("points", [])
    elif existing.get("type") == "contango_suite_report":
        # Legacy layout: the file *was* the raw report. Keep it as history.
        trajectory["points"] = [{"label": "pre-trajectory", "config": {},
                                 "report": existing}]
    else:
        raise ValueError(f"{path}: unrecognized snapshot format")
    return trajectory


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", choices=sorted(BENCH_BINARIES), default="table5",
                        help="which bench driver to snapshot (default table5)")
    parser.add_argument("--label", default="",
                        help="point label (default: current git short hash)")
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory holding the bench binaries")
    parser.add_argument("--out", default="",
                        help="trajectory file (default BENCH_<bench>.json)")
    parser.add_argument("--max-sinks", type=int, default=2000,
                        help="CONTANGO_MAX_SINKS for the table5 sweep")
    parser.add_argument("--threads", type=int, default=1,
                        help="CONTANGO_THREADS (1 = serial, reproducible timing)")
    parser.add_argument("--scenario", default="",
                        help="CONTANGO_SCENARIO for the table5 sweep: run a "
                             "registered scenario family (e.g. 'huge') instead "
                             "of the TI-style chip")
    parser.add_argument("--seed", type=int, default=1,
                        help="CONTANGO_SEED for --scenario instances")
    parser.add_argument("--workloads", default="",
                        help="CONTANGO_WORKLOADS spec for the table5 driver: "
                             "run exactly these workloads (family names, "
                             ".bench/.cbench files, directories) instead of "
                             "a sink-count sweep; records load_seconds")
    parser.add_argument("--force-full", action="store_true",
                        help="set CONTANGO_INCREMENTAL=0 (baseline comparison runs)")
    parser.add_argument("--force-scalar", action="store_true",
                        help="set CONTANGO_BATCH=0 (scalar-kernel comparison runs)")
    parser.add_argument("--force-scan", action="store_true",
                        help="set CONTANGO_SPATIAL=0 (linear-scan geometry "
                             "comparison runs)")
    parser.add_argument("--force-buffered", action="store_true",
                        help="set CONTANGO_MMAP=0 (buffered-read .cbench "
                             "loading instead of mmap)")
    args = parser.parse_args()

    build_dir = pathlib.Path(args.build_dir)
    bench = build_dir / BENCH_BINARIES[args.bench]
    if not bench.exists():
        print(f"bench_snapshot: {bench} not found — build the project first",
              file=sys.stderr)
        return 1

    out = pathlib.Path(args.out or f"BENCH_{args.bench}.json")
    label = args.label
    if not label:
        probe = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                               capture_output=True, text=True)
        label = probe.stdout.strip() if probe.returncode == 0 else "snapshot"

    raw = build_dir / f"{args.bench}_snapshot.json"
    env = dict(os.environ)
    env.update({
        "CONTANGO_THREADS": str(args.threads),
        "CONTANGO_JSON_OUT": str(raw),
    })
    if args.bench == "table5":
        env["CONTANGO_MAX_SINKS"] = str(args.max_sinks)
    if args.bench != "table6":
        # Timing points exclude the optional MC pass unless the caller
        # exported CONTANGO_MC_TRIALS; table6 *is* the MC bench.
        env.setdefault("CONTANGO_MC_TRIALS", "0")
    if args.scenario:
        env["CONTANGO_SCENARIO"] = args.scenario
        env["CONTANGO_SEED"] = str(args.seed)
    if args.workloads:
        env["CONTANGO_WORKLOADS"] = args.workloads
        env["CONTANGO_SEED"] = str(args.seed)
    if args.force_full:
        env["CONTANGO_INCREMENTAL"] = "0"
    if args.force_scalar:
        env["CONTANGO_BATCH"] = "0"
    if args.force_scan:
        env["CONTANGO_SPATIAL"] = "0"
    if args.force_buffered:
        env["CONTANGO_MMAP"] = "0"

    config = {
        "binary": BENCH_BINARIES[args.bench],
        "threads": args.threads,
        "incremental": not args.force_full,
        "batch": not args.force_scalar,
        "spatial": not args.force_scan,
        "mmap": not args.force_buffered,
    }
    if args.bench == "table5":
        config["max_sinks"] = args.max_sinks
        if args.scenario:
            config["scenario"] = args.scenario
            config["seed"] = args.seed
        if args.workloads:
            config["workloads"] = args.workloads
            config["seed"] = args.seed

    print(f"bench_snapshot: running {bench} "
          f"(threads={args.threads}, incremental={int(config['incremental'])}, "
          f"batch={int(config['batch'])}, spatial={int(config['spatial'])})")
    result = subprocess.run([str(bench)], env=env)
    if result.returncode != 0:
        print(f"bench_snapshot: {BENCH_BINARIES[args.bench]} failed",
              file=sys.stderr)
        return result.returncode

    with open(raw) as f:
        report = json.load(f)
    if report.get("type") != "contango_suite_report" or not report.get("runs"):
        print("bench_snapshot: malformed suite report", file=sys.stderr)
        return 1

    try:
        trajectory = load_trajectory(out, args.bench)
    except ValueError as e:
        print(f"bench_snapshot: {e}", file=sys.stderr)
        return 1
    trajectory["points"] = [p for p in trajectory["points"]
                            if p.get("label") != label]
    trajectory["points"].append({"label": label, "config": config,
                                 "report": report})

    with open(out, "w") as f:
        json.dump(trajectory, f, indent=1, sort_keys=False)
        f.write("\n")

    batched = report.get("total_batched_stage_evals", 0)
    scalar = report.get("total_scalar_stage_evals", 0)
    print(f"bench_snapshot: wrote point '{label}' to {out} "
          f"({len(trajectory['points'])} point(s) total) — "
          f"{len(report['runs'])} run(s), {report['wall_seconds']:.1f} s wall, "
          f"{report['total_sim_runs']} sims, "
          f"kernel split {batched} batched / {scalar} scalar")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Record a Table-V scaling snapshot (the repo's perf-trajectory series).

Runs ``bench_table5_scaling`` with ``CONTANGO_JSON_OUT`` and copies the
machine-readable suite report to ``BENCH_table5.json`` (checked in at the
repo root, one point per PR that wants to claim a perf delta).  The report
carries per-run wall seconds plus the full/incremental evaluation split,
so release-over-release diffs show both what got faster and why.

Usage:
    python3 scripts/bench_snapshot.py [--build-dir build] [--out BENCH_table5.json]
                                      [--max-sinks 2000] [--threads 1]
                                      [--force-full]

Exit status is non-zero when the bench fails or the report is malformed.
"""

import argparse
import json
import os
import pathlib
import subprocess
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory holding bench_table5_scaling")
    parser.add_argument("--out", default="BENCH_table5.json",
                        help="where to write the snapshot (repo-root relative)")
    parser.add_argument("--max-sinks", type=int, default=2000,
                        help="CONTANGO_MAX_SINKS for the sweep")
    parser.add_argument("--threads", type=int, default=1,
                        help="CONTANGO_THREADS (1 = serial, reproducible timing)")
    parser.add_argument("--force-full", action="store_true",
                        help="set CONTANGO_INCREMENTAL=0 (baseline comparison runs)")
    args = parser.parse_args()

    build_dir = pathlib.Path(args.build_dir)
    bench = build_dir / "bench_table5_scaling"
    if not bench.exists():
        print(f"bench_snapshot: {bench} not found — build the project first",
              file=sys.stderr)
        return 1

    raw = build_dir / "table5_snapshot.json"
    env = dict(os.environ)
    env.update({
        "CONTANGO_MAX_SINKS": str(args.max_sinks),
        "CONTANGO_THREADS": str(args.threads),
        "CONTANGO_JSON_OUT": str(raw),
        "CONTANGO_MC_TRIALS": env.get("CONTANGO_MC_TRIALS", "0"),
    })
    if args.force_full:
        env["CONTANGO_INCREMENTAL"] = "0"

    print(f"bench_snapshot: running {bench} "
          f"(max_sinks={args.max_sinks}, threads={args.threads}, "
          f"incremental={'0' if args.force_full else env.get('CONTANGO_INCREMENTAL', '1')})")
    result = subprocess.run([str(bench)], env=env)
    if result.returncode != 0:
        print("bench_snapshot: bench_table5_scaling failed", file=sys.stderr)
        return result.returncode

    with open(raw) as f:
        report = json.load(f)
    if report.get("type") != "contango_suite_report" or not report.get("runs"):
        print("bench_snapshot: malformed suite report", file=sys.stderr)
        return 1

    with open(args.out, "w") as f:
        json.dump(report, f, indent=1, sort_keys=False)
        f.write("\n")

    total = report["total_sim_runs"]
    full = report["total_full_evals"]
    incremental = report["total_incremental_evals"]
    print(f"bench_snapshot: wrote {args.out} — "
          f"{len(report['runs'])} run(s), {report['wall_seconds']:.1f} s wall, "
          f"{total} sims ({full} full, {incremental} incremental)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// contango-pack: convert, verify and inspect benchmarks across the text
// `.bench` and binary `.cbench` formats (netlist/io.h, netlist/binio.h).
//
// usage:
//   contango-pack pack <in> <out.cbench>      convert to binary
//   contango-pack unpack <in> <out.bench>     convert to text
//   contango-pack verify <a> [b]              one file: round-trip it
//                                             through the other format and
//                                             compare canonical text; two
//                                             files: compare their content
//   contango-pack info <file.cbench>          header + section table
//   contango-pack gen-mega <sinks> <seed> <out.cbench>
//                                             stream a mega-family
//                                             instance straight to binary
//
// pack/unpack accept either format as input (the reader dispatches on the
// extension), so `pack x.cbench y.cbench` re-canonicalizes a binary file.
// Conversions are lossless: unpack(pack(x)) reproduces the exporter's text
// bytes, which the CI binio-smoke job diffs over every checked-in
// benchmark.
//
// exit codes: 0 success, 1 usage/IO/parse error, 2 verification mismatch.

#include <cstdio>
#include <cstring>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "io/mmap.h"
#include "netlist/binio.h"
#include "netlist/generators.h"
#include "netlist/io.h"
#include "util/timer.h"

using namespace contango;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: contango-pack pack <in> <out.cbench>\n"
               "       contango-pack unpack <in> <out.bench>\n"
               "       contango-pack verify <a> [b]\n"
               "       contango-pack info <file.cbench>\n"
               "       contango-pack gen-mega <sinks> <seed> <out.cbench>\n");
  return 1;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Canonical text serialization of any benchmark file; the common currency
/// of every verification (two files are "the same instance" exactly when
/// these bytes match, and benchmark_content_hash hashes these bytes).
std::string canonical_text(const Benchmark& bench) {
  std::ostringstream out;
  write_benchmark(bench, out);
  return out.str();
}

/// Round-trips `bench` through the *other* format in memory and returns
/// the canonical text that comes back out.
std::string round_tripped_text(const Benchmark& bench, bool via_binary) {
  if (via_binary) {
    std::ostringstream binary(std::ios::binary);
    write_cbench(bench, binary);
    const std::string bytes = binary.str();
    const Benchmark back =
        MappedBenchmark::from_file(
            MappedFile::from_bytes(
                std::vector<unsigned char>(bytes.begin(), bytes.end())),
            "<memory.cbench>")
            .to_benchmark();
    return canonical_text(back);
  }
  std::ostringstream text;
  write_benchmark(bench, text);
  std::istringstream in(text.str());
  return canonical_text(read_benchmark(in, "<memory.bench>"));
}

int cmd_convert(const std::string& in_path, const std::string& out_path) {
  Timer load_timer;
  const Benchmark bench = read_benchmark_file(in_path);
  const double load_s = load_timer.seconds();
  Timer save_timer;
  if (ends_with(out_path, kCbenchExtension)) {
    write_cbench_file(bench, out_path);
  } else {
    write_benchmark_file(bench, out_path);
  }
  std::printf("%s -> %s: %zu sinks, %zu obstacles (load %.3f s, write %.3f s)\n",
              in_path.c_str(), out_path.c_str(), bench.sinks.size(),
              bench.obstacle_rects.size(), load_s, save_timer.seconds());
  if (!bench.constraints.trivial()) {
    std::printf("  constraints: %s\n",
                constraints_summary(bench.constraints).c_str());
  }
  return 0;
}

int cmd_verify(const std::vector<std::string>& files) {
  const Benchmark a = read_benchmark_file(files[0]);
  const std::string text_a = canonical_text(a);
  std::string text_b;
  std::string label_b;
  if (files.size() == 2) {
    text_b = canonical_text(read_benchmark_file(files[1]));
    label_b = files[1];
  } else {
    // Single file: prove it survives the *other* encoding unchanged.
    const bool via_binary = !ends_with(files[0], kCbenchExtension);
    text_b = round_tripped_text(a, via_binary);
    label_b = via_binary ? "round-trip via .cbench" : "round-trip via .bench";
  }
  const Hash128 hash = benchmark_content_hash(a);
  if (text_a == text_b) {
    std::printf("OK %s == %s (content hash %s)\n", files[0].c_str(),
                label_b.c_str(), hash.hex().c_str());
    if (!a.constraints.trivial()) {
      std::printf("  constraints: %s\n",
                  constraints_summary(a.constraints).c_str());
    }
    return 0;
  }
  std::fprintf(stderr, "MISMATCH: %s and %s differ in canonical form\n",
               files[0].c_str(), label_b.c_str());
  return 2;
}

int cmd_info(const std::string& path) {
  Timer load_timer;
  const MappedBenchmark mapped = MappedBenchmark::open(path);
  std::printf("%s: cbench version %u, %zu bytes, %s backend "
              "(validated in %.3f s)\n",
              path.c_str(), mapped.version(), mapped.file_size(),
              mapped.mapped() ? "mmap" : "buffered", load_timer.seconds());
  std::printf("  name %.*s: %zu sinks, %zu obstacles, %zu wires, "
              "%zu inverters, %zu corners\n",
              static_cast<int>(mapped.benchmark_name().size()),
              mapped.benchmark_name().data(), mapped.num_sinks(),
              mapped.num_obstacles(), mapped.num_wires(),
              mapped.num_inverters(), mapped.num_corners());
  std::printf("  constraints: %s\n",
              constraints_summary(mapped.read_constraints()).c_str());
  std::printf("  %-13s %10s %10s %12s  %s\n", "section", "offset", "records",
              "bytes", "checksum");
  for (const MappedBenchmark::SectionInfo& s : mapped.sections()) {
    std::printf("  %-13s %10llu %10llu %12llu  %016llx\n",
                cbench_section_name(s.id),
                static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.count),
                static_cast<unsigned long long>(s.byte_size),
                static_cast<unsigned long long>(s.checksum));
  }
  return 0;
}

int cmd_gen_mega(const std::string& sinks_text, const std::string& seed_text,
                 const std::string& out_path) {
  MegaGenParams params;
  try {
    params.num_sinks = std::stoi(sinks_text);
    params.seed = std::stoull(seed_text);
  } catch (const std::exception&) {
    std::fprintf(stderr, "gen-mega: sinks and seed must be integers\n");
    return 1;
  }
  // Match the scenario registry's instance naming so a generated file and
  // collect_workloads("mega:<n>") hash to the same cache key.
  params.name = "mega_s" + seed_text + "_n" + sinks_text;
  Timer gen_timer;
  generate_mega_cbench_file(params, out_path);
  std::printf("streamed %s (%d sinks, seed %s) in %.1f s\n", out_path.c_str(),
              params.num_sinks, seed_text.c_str(), gen_timer.seconds());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "pack" || command == "unpack") {
      if (args.size() != 2) return usage();
      return cmd_convert(args[0], args[1]);
    }
    if (command == "verify") {
      if (args.size() != 1 && args.size() != 2) return usage();
      return cmd_verify(args);
    }
    if (command == "info") {
      if (args.size() != 1) return usage();
      return cmd_info(args[0]);
    }
    if (command == "gen-mega") {
      if (args.size() != 3) return usage();
      return cmd_gen_mega(args[0], args[1], args[2]);
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "contango-pack %s: %s\n", command.c_str(), e.what());
    return 1;
  }
}

// Command-line client of contangod (docs/SERVICE_PROTOCOL.md):
//
//   contango-cli submit WORKLOADS [--seed N] [--priority N] [--threads N]
//                [--pipeline SPEC] [--mc-trials N] [--mc-seed N]
//                [--mc-sigma-vdd X] [--mc-skew-target PS]
//                [--out FILE] [--quiet]
//   contango-cli status
//   contango-cli cancel JOB
//   contango-cli shutdown
//
// All subcommands take --socket PATH (default: $CONTANGO_SOCKET, else
// /tmp/contangod.sock).  WORKLOADS uses the collect_workloads() syntax:
// scenario families with optional :N sink counts, .bench files and
// directories, comma-separated (e.g. "ring,high_fanout:1000,benchmarks").
//
// submit streams progress to stderr and writes the suite report (verbatim
// bytes from the daemon — cache hits are cmp-identical to fresh runs) to
// --out or stdout.  Exit codes: 0 done, 1 usage/connection/protocol error,
// 2 job failed, 3 job cancelled.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "io/json.h"
#include "service/client.h"

using namespace contango;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: contango-cli [--socket PATH] COMMAND ...\n"
      "  submit WORKLOADS [--seed N] [--priority N] [--threads N]\n"
      "         [--pipeline SPEC] [--mc-trials N] [--mc-seed N]\n"
      "         [--mc-sigma-vdd X] [--mc-skew-target PS]\n"
      "         [--out FILE] [--quiet]\n"
      "  status\n"
      "  cancel JOB\n"
      "  shutdown\n");
  return 1;
}

int run_submit(ServiceClient& client, const std::vector<std::string>& args) {
  JobRequest request;
  std::string out_path;
  bool quiet = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "contango-cli: %s needs a value\n", arg.c_str());
        std::exit(1);
      }
      return args[++i];
    };
    if (arg == "--seed") {
      request.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--priority") {
      request.priority = std::atoi(next().c_str());
    } else if (arg == "--threads") {
      request.threads = std::atoi(next().c_str());
    } else if (arg == "--pipeline") {
      request.pipeline = next();
    } else if (arg == "--mc-trials") {
      request.mc_trials = std::atoi(next().c_str());
    } else if (arg == "--mc-seed") {
      request.mc_seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--mc-sigma-vdd") {
      request.mc_sigma_vdd = std::atof(next().c_str());
    } else if (arg == "--mc-skew-target") {
      request.mc_skew_target = std::atof(next().c_str());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "contango-cli: unknown submit flag %s\n", arg.c_str());
      return 1;
    } else if (request.workloads.empty()) {
      request.workloads = arg;
    } else {
      std::fprintf(stderr, "contango-cli: more than one workload spec "
                           "(join them with commas)\n");
      return 1;
    }
  }
  if (request.workloads.empty()) {
    std::fprintf(stderr, "contango-cli: submit needs a workload spec\n");
    return 1;
  }
  request.name = request.workloads;

  ServiceClient::EventCallback progress;
  if (!quiet) {
    progress = [](const std::string&, const JsonValue& event) {
      const std::string kind = event.string_or("event", "");
      if (kind == "queued") {
        std::fprintf(stderr, "%s queued (%lld ahead, %lld benchmarks)\n",
                     event.string_or("job", "?").c_str(),
                     event.long_or("queue_position", 0),
                     event.long_or("total_benchmarks", 0));
      } else if (kind == "started") {
        std::fprintf(stderr, "%s started\n",
                     event.string_or("job", "?").c_str());
      } else if (kind == "progress") {
        std::fprintf(stderr, "%s [%lld/%lld] %s %s (%.2fs)\n",
                     event.string_or("job", "?").c_str(),
                     event.long_or("completed", 0),
                     event.long_or("total_benchmarks", 0),
                     event.string_or("benchmark", "?").c_str(),
                     event.bool_or("ok", false) ? "ok" : "FAILED",
                     event.number_or("seconds", 0.0));
      } else if (kind == "done") {
        std::fprintf(stderr, "%s %s%s (%.2fs)\n",
                     event.string_or("job", "?").c_str(),
                     event.string_or("state", "?").c_str(),
                     event.bool_or("cached", false) ? " [cached]" : "",
                     event.number_or("seconds", 0.0));
      }
    };
  }

  const ServiceClient::SubmitResult result = client.submit(request, progress);
  if (!result.report_json.empty()) {
    if (out_path.empty()) {
      std::printf("%s\n", result.report_json.c_str());
    } else {
      // Verbatim bytes plus the protocol's newline framing: two --out
      // files of the same job (fresh and cached) compare equal with cmp.
      write_text_file(out_path, result.report_json + "\n");
    }
  }
  switch (result.state) {
    case JobState::kDone:
      return 0;
    case JobState::kCancelled:
      std::fprintf(stderr, "contango-cli: job %s was cancelled\n",
                   result.job.c_str());
      return 3;
    default:
      std::fprintf(stderr, "contango-cli: job %s failed: %s\n",
                   result.job.c_str(), result.error.c_str());
      return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string command;
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && command.empty()) {
      if (i + 1 >= argc) return usage();
      socket_path = argv[++i];
    } else if (command.empty()) {
      command = arg;
    } else {
      rest.push_back(arg);
    }
  }
  if (command.empty()) return usage();

  ServiceClient client(socket_path);
  try {
    if (command == "submit") {
      return run_submit(client, rest);
    }
    if (command == "status") {
      std::string raw;
      client.request_status(&raw);
      std::printf("%s\n", raw.c_str());
      return 0;
    }
    if (command == "cancel") {
      if (rest.size() != 1) {
        std::fprintf(stderr, "contango-cli: cancel needs exactly one job id\n");
        return 1;
      }
      std::string state;
      if (!client.request_cancel(rest[0], &state)) {
        std::fprintf(stderr, "contango-cli: no such job %s\n", rest[0].c_str());
        return 1;
      }
      std::printf("%s %s\n", rest[0].c_str(), state.c_str());
      return 0;
    }
    if (command == "shutdown") {
      client.request_shutdown();
      std::fprintf(stderr, "contango-cli: daemon shutting down\n");
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "contango-cli: %s\n", e.what());
    return 1;
  }
  return usage();
}

// The Contango service daemon: serves the newline-delimited JSON protocol
// (docs/SERVICE_PROTOCOL.md) on a Unix-domain socket, running submitted
// benchmark suites on a priority JobScheduler with a content-addressed
// result cache.  Pair it with contango-cli:
//
//   ./build/contangod --workers 4 &
//   ./build/contango-cli submit --workloads ring,grid
//   ./build/contango-cli shutdown
//
// SIGINT/SIGTERM shut down gracefully: in-flight jobs stop at their next
// cancellation point, streams flush, the socket file is removed.  A second
// signal exits immediately.
//
// usage: contangod [--socket PATH] [--workers N] [--max-queue N]
//                  [--cache N] [--verbose]
//
// The socket defaults to $CONTANGO_SOCKET, else /tmp/contangod.sock.  The
// CONTANGO_* suite env knobs (threads, pipeline, MC config; cts/suite.h)
// form the base options every job inherits before its own overrides.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <thread>

#include "cts/suite.h"
#include "service/daemon.h"
#include "util/log.h"
#include "util/signal.h"

using namespace contango;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--workers N] [--max-queue N] "
               "[--cache N] [--verbose]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  DaemonOptions options;
  options.verbose = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      options.socket_path = next();
    } else if (arg == "--workers") {
      options.workers = std::atoi(next());
    } else if (arg == "--max-queue") {
      options.max_queue = std::atoi(next());
    } else if (arg == "--cache") {
      options.cache_entries = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--quiet") {
      options.verbose = false;
    } else {
      return usage(argv[0]);
    }
  }

  try {
    options.base = suite_options_from_env();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "contangod: %s\n", e.what());
    return 2;
  }
  for (const std::string& name : unknown_contango_env_vars()) {
    Log::warn("contangod: unknown env var %s (knob typo?)", name.c_str());
  }

  // Signal -> cancel bridge: first SIGINT/SIGTERM requests a graceful
  // shutdown (jobs stop at their next cancellation point), a second one
  // _Exits.  Installed before start() so there is no uncovered window.
  install_signal_cancel();

  Daemon daemon(options);
  try {
    daemon.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "contangod: %s\n", e.what());
    return 1;
  }

  while (!signal_cancel_token().cancelled() && !daemon.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  const bool signalled = signal_cancel_token().cancelled();
  if (signalled) {
    Log::info("contangod: caught %s, shutting down",
              strsignal(signal_received()));
  }
  // Signal-initiated shutdown cancels in-flight jobs (the operator wants
  // the process gone); a client-requested shutdown lets them finish.
  daemon.stop(/*cancel_jobs=*/signalled);
  return 0;
}

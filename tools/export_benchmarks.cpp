// Regenerates the checked-in benchmarks/ directory: one .bench instance of
// every registered scenario family (cts/scenario.h) at the given seed,
// written through netlist/io so the files exercise the exact format the
// parser reads back.  Run from the repo root after changing a generator,
// the registry or the format, then commit the diff:
//
//   ./build/export_benchmarks benchmarks 1
//
// usage: export_benchmarks [out_dir=benchmarks] [seed=1]

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>

#include "cts/scenario.h"
#include "netlist/io.h"

using namespace contango;

int main(int argc, char** argv) {
  const std::string out_dir = (argc > 1) ? argv[1] : "benchmarks";
  const auto seed = static_cast<std::uint64_t>((argc > 2) ? std::atoll(argv[2]) : 1);

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create '%s': %s\n", out_dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  const ScenarioRegistry& registry = ScenarioRegistry::builtin();
  for (const ScenarioRegistry::Family& family : registry.families()) {
    try {
      const Benchmark bench = registry.make(family.name, seed);
      const std::string path = out_dir + "/" + bench.name + ".bench";
      write_benchmark_file(bench, path);
      std::printf("%-28s %4zu sinks, %3zu obstacles  (%s)\n", path.c_str(),
                  bench.sinks.size(), bench.obstacle_rects.size(),
                  family.description.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", family.name.c_str(), e.what());
      return 1;
    }
  }
  return 0;
}
